//===- eva/api/Runner.h - One evaluation API over all backends --*- C++ -*-===//
//
// Part of the EVA-CKKS project (PLDI 2020 "EVA" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The unified typed evaluation API (the ergonomic surface of the paper's
/// Section 7.1 PyEVA frontend, generalized over deployment shapes): one
/// abstract Runner with `Expected<Valuation> run(const Valuation &)`, and
/// factories for every backend in the repo —
///
///  * Runner::reference(P)     — the paper's Section 3 reference semantics
///                               (plaintext doubles, no encryption),
///  * Runner::local(CP, Opts)  — encrypt/execute/decrypt in-process; the
///                               thread count selects the serial or the
///                               asynchronous-DAG parallel CKKS executor
///                               (or the CHET-style bulk executor for
///                               baseline measurements),
///  * Runner::remote(T, name)  — the full client loop against an
///                               encrypted-compute service over a Transport
///                               (socket or in-process).
///
/// Backends are drop-in interchangeable: they expose the same
/// ProgramSignature, validate inputs identically, and — given the same
/// compiled program, seed, and reproducible-seed mode — the local and
/// remote CKKS backends produce bit-identical outputs (golden-tested via
/// `evac run`). The reference backend agrees up to CKKS approximation
/// error.
///
//===----------------------------------------------------------------------===//

#ifndef EVA_API_RUNNER_H
#define EVA_API_RUNNER_H

#include "eva/api/Valuation.h"
#include "eva/runtime/CkksExecutor.h"

#include <memory>
#include <string>

namespace eva {

class Transport; // see eva/service/Client.h

/// Which local CKKS executor a local Runner schedules with.
enum class LocalStyle {
  Auto,        ///< Threads <= 1 -> Serial, otherwise ParallelDag.
  Serial,      ///< CkksExecutor: sequential baseline.
  ParallelDag, ///< ParallelCkksExecutor: the paper's EVA executor.
  KernelBulk,  ///< KernelBulkCkksExecutor: the CHET-style baseline.
};

struct LocalRunnerOptions {
  /// Total execution contexts (the calling thread participates).
  size_t Threads = 1;
  LocalStyle Style = LocalStyle::Auto;
  /// Consume the compiled RotationPlan: rotations sharing a source share
  /// one key-switch decomposition (bit-identical outputs; see
  /// executionStats() for the decomposition counts). Off reproduces the
  /// one-decomposition-per-rotation baseline.
  bool Hoisting = true;
  /// Key/encryption RNG seed (the secret key is a function of it).
  uint64_t Seed = 1;
  /// When true, ciphertext/key expansion seeds are also derived
  /// deterministically from Seed, making the whole run a pure function of
  /// (program, seed, inputs) — required for cross-backend bit-identity
  /// goldens. Default off: expansion seeds come from OS entropy.
  bool ReproducibleSeeds = false;
};

struct RemoteRunnerOptions {
  /// Client key seed (same role as LocalRunnerOptions::Seed).
  uint64_t KeySeed = 1;
  /// See LocalRunnerOptions::ReproducibleSeeds.
  bool ReproducibleSeeds = false;
};

/// One execution backend for one program. run() validates the inputs
/// against signature() (precise diagnostics, no aborts), executes, and
/// returns one entry per program output.
class Runner {
public:
  virtual ~Runner() = default;

  /// The typed I/O contract this runner executes.
  virtual const ProgramSignature &signature() const = 0;

  /// Short backend name for messages: "reference", "local", "remote".
  virtual const char *backend() const = 0;

  /// Validates \p Inputs, executes the program, and returns the outputs as
  /// plaintext vectors (or ciphertexts, for evaluation-only workspaces that
  /// cannot decrypt). Never aborts on malformed input.
  virtual Expected<Valuation> run(const Valuation &Inputs) = 0;

  /// Wall-clock breakdown of the most recent successful run (benches time
  /// the compute phase without giving up the typed API).
  struct Timing {
    double EncryptSeconds = 0;
    double ComputeSeconds = 0;
    double DecryptSeconds = 0;
  };
  virtual Timing lastTiming() const { return {}; }

  /// Executor statistics of the most recent run (local backends only).
  virtual const ExecutionStats *executionStats() const { return nullptr; }

  /// Server-assigned trace id of the most recent successful run (remote
  /// backend only; 0 locally or against servers predating request
  /// tracing). Correlates a client-observed result with the server's log
  /// lines, metrics spans, and audit records.
  virtual uint64_t lastRequestId() const { return 0; }

  //===--------------------------------------------------------------------===
  // Factories
  //===--------------------------------------------------------------------===

  /// Reference semantics over an uncompiled (or compiled) program graph.
  /// Clones \p P; the argument need not outlive the runner.
  static std::unique_ptr<Runner> reference(const Program &P);

  /// Owning local CKKS backend: builds a client-style crypto stack
  /// (context, keys, symmetric encryptor, decryptor) from \p Opts.Seed —
  /// the exact stack a ServiceClient builds, so a local run with
  /// ReproducibleSeeds matches the remote backend bit for bit.
  static Expected<std::unique_ptr<Runner>>
  local(CompiledProgram CP, const LocalRunnerOptions &Opts = {});

  /// Non-owning local CKKS backend over an existing workspace (benches and
  /// tests share one expensive key set across runners). \p CP and \p WS
  /// must outlive the runner. With an evaluation-only (server) workspace
  /// the runner consumes/produces ciphertext entries instead of
  /// encrypting/decrypting.
  static Expected<std::unique_ptr<Runner>>
  local(const CompiledProgram &CP, std::shared_ptr<CkksWorkspace> WS,
        const LocalRunnerOptions &Opts = {});

  /// Remote backend: the full client loop (fetch signature, derive context,
  /// generate keys, upload evaluation keys, encrypt symmetrically, submit,
  /// decrypt) for \p ProgramName over \p T. Owns the transport.
  static Expected<std::unique_ptr<Runner>>
  remote(std::unique_ptr<Transport> T, const std::string &ProgramName,
         const RemoteRunnerOptions &Opts = {});

  /// Remote backend over a borrowed transport (\p T must outlive the
  /// runner; tests drive Service::dispatch via InProcessTransport).
  static Expected<std::unique_ptr<Runner>>
  remote(Transport &T, const std::string &ProgramName,
         const RemoteRunnerOptions &Opts = {});
};

} // namespace eva

#endif // EVA_API_RUNNER_H
