//===- eva/api/Valuation.h - Typed named values -----------------*- C++ -*-===//
//
// Part of the EVA-CKKS project (PLDI 2020 "EVA" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Valuation maps input/output names to typed values: a plaintext vector,
/// a broadcast scalar, or a ciphertext. It replaces the stringly-typed
/// `std::map<std::string, std::vector<double>>` plumbing of the individual
/// executors: a Valuation validates itself against a ProgramSignature with
/// precise diagnostics (missing, extra, misnamed, wrong-length, non-finite,
/// wrong ciphertext scale/level) *before* execution, so a malformed request
/// surfaces as an Expected<> error instead of a fatalError abort inside a
/// backend.
///
//===----------------------------------------------------------------------===//

#ifndef EVA_API_VALUATION_H
#define EVA_API_VALUATION_H

#include "eva/api/ProgramSignature.h"
#include "eva/ckks/Ciphertext.h"
#include "eva/support/Error.h"

#include <map>
#include <string>
#include <variant>
#include <vector>

namespace eva {

/// Named typed values flowing into or out of a Runner.
class Valuation {
public:
  /// One value: a plaintext vector (replicated if shorter than vec_size),
  /// a broadcast scalar, or a ciphertext.
  using Value = std::variant<std::vector<double>, double, Ciphertext>;

  Valuation() = default;

  /// Wraps a legacy name -> vector map (every entry a plaintext vector).
  static Valuation fromMap(const std::map<std::string, std::vector<double>> &M);

  Valuation &set(std::string Name, std::vector<double> V);
  Valuation &set(std::string Name, double Scalar);
  Valuation &set(std::string Name, Ciphertext Ct);
  /// Convenience for brace-initialized slot lists.
  Valuation &set(std::string Name, std::initializer_list<double> V);

  bool has(const std::string &Name) const { return Values.count(Name) != 0; }
  size_t size() const { return Values.size(); }
  bool empty() const { return Values.empty(); }

  /// The stored value; nullptr if \p Name is absent.
  const Value *find(const std::string &Name) const;

  bool isVector(const std::string &Name) const;
  bool isScalar(const std::string &Name) const;
  bool isCipher(const std::string &Name) const;

  /// Typed accessors. Accessing an absent name or the wrong kind is a fatal
  /// error (use find()/is*() to probe first).
  const std::vector<double> &vector(const std::string &Name) const;
  double scalar(const std::string &Name) const;
  const Ciphertext &cipher(const std::string &Name) const;

  /// The plain value of \p Name as a vector, by value (a scalar becomes a
  /// broadcast length-1 vector). Fatal on a ciphertext or absent entry.
  std::vector<double> plainVec(const std::string &Name) const;

  /// Plain entries as a name -> vector map (scalars become length-1
  /// vectors). Ciphertext entries are a fatal error — callers converting to
  /// the legacy map form must hold a plain-only valuation.
  std::map<std::string, std::vector<double>> toMap() const;

  /// Iteration (name-ordered).
  auto begin() const { return Values.begin(); }
  auto end() const { return Values.end(); }

private:
  std::map<std::string, Value> Values;
};

/// How strictly validateInputs checks a valuation.
struct ValidationPolicy {
  /// Whether ciphertext entries are acceptable for cipher inputs (local
  /// backends accept pre-encrypted inputs; the reference semantics has no
  /// ciphertexts).
  bool AllowCipherEntries = true;
  /// Whether plain values must be finite (the CKKS encoder's float->integer
  /// rounding is undefined for NaN/Inf; the reference semantics tolerates
  /// them but shares the contract for backend interchangeability).
  bool RequireFinite = true;
};

/// Validates \p V as the input set of a program with signature \p Sig.
/// Returns success, or one diagnostic listing *every* problem found:
/// missing/extra/misnamed names (with a did-you-mean suggestion), wrong
/// vector lengths, non-finite values, and wrong ciphertext scale/level.
Status validateInputs(const ProgramSignature &Sig, const Valuation &V,
                      const ValidationPolicy &Policy = {});

} // namespace eva

#endif // EVA_API_VALUATION_H
