//===- eva/api/ProgramSignature.h - Typed program I/O contract --*- C++ -*-===//
//
// Part of the EVA-CKKS project (PLDI 2020 "EVA" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The typed input/output contract of an EVA program: one IoSpec per input
/// and output (name, value type, fixed-point log scale, expected ciphertext
/// level, vector size). Every execution backend — the reference semantics,
/// the local CKKS executors, and the remote encrypted-compute service —
/// exposes the same ProgramSignature, so a Valuation validated against it
/// runs unchanged on any of them (see eva/api/Runner.h).
///
/// The signature is derived from three sources that must agree:
///  * an uncompiled Program (frontend graph; levels unknown, Level = 0),
///  * a CompiledProgram (Algorithm 1 output; fresh cipher inputs sit at the
///    full data chain),
///  * the service's wire-level ParamSignature (what a remote client fetches
///    before it can build keys).
///
//===----------------------------------------------------------------------===//

#ifndef EVA_API_PROGRAMSIGNATURE_H
#define EVA_API_PROGRAMSIGNATURE_H

#include "eva/core/Compiler.h"
#include "eva/ir/Program.h"
#include "eva/service/Messages.h"

#include <string>
#include <string_view>
#include <vector>

namespace eva {

/// One named program input or output.
struct IoSpec {
  std::string Name;
  /// Cipher for encrypted vectors, Vector for plaintext vector inputs.
  ValueType Type = ValueType::Cipher;
  /// log2 of the fixed-point scale the value is encoded at.
  double LogScale = 0;
  /// Expected prime count of a fresh ciphertext carrying this value (the
  /// full data chain for compiled programs; 0 when levels are not known,
  /// i.e. for uncompiled programs under the reference semantics).
  size_t Level = 0;

  bool isCipher() const { return Type == ValueType::Cipher; }
};

/// The typed I/O contract of one program.
struct ProgramSignature {
  std::string ProgramName;
  uint64_t VecSize = 0;
  std::vector<IoSpec> Inputs;
  std::vector<IoSpec> Outputs;

  /// Looks up an input/output spec by name; nullptr if absent.
  const IoSpec *findInput(std::string_view Name) const;
  const IoSpec *findOutput(std::string_view Name) const;

  /// Signature of an uncompiled frontend program (Level = 0: the reference
  /// semantics has no levels).
  static ProgramSignature of(const Program &P);
  /// Signature of a compiled program: fresh cipher inputs sit at the full
  /// data chain of the selected modulus.
  static ProgramSignature of(const CompiledProgram &CP);
  /// Signature recovered from the service's wire-level ParamSignature (what
  /// a remote client fetched via LIST_PROGRAMS).
  static ProgramSignature of(const ParamSignature &Sig);
};

} // namespace eva

#endif // EVA_API_PROGRAMSIGNATURE_H
