//===- eva/service/Audit.h - Transcript-hash audit log ----------*- C++ -*-===//
//
// Part of the EVA-CKKS project (PLDI 2020 "EVA" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compute-integrity half of the observability story. The server can
/// not show an operator plaintexts — it never has any — but it CAN commit
/// to what it received and what it returned: one audit line per request
/// records FNV-1a hashes of the exact wire bytes of the inputs and outputs
/// plus the span timings.
///
///   req=7 session=1 program=dot3 inputs=9e107d9d372bb682
///   outputs=e4d909c290d0fb1c decode_us=812 queue_us=130 execute_us=20412
///   encode_us=660 total_us=22104
///
/// Because PR 4's ReproducibleSeeds mode makes the whole exchange a pure
/// function of (program, key seed, inputs) — the client's sampler order and
/// ciphertext expansion seeds are derived deterministically — anyone who
/// knows the plaintext inputs and the seed can re-run the request locally
/// and must land on byte-identical wire bytes on both sides. auditReplay()
/// does exactly that (it is what `evacall audit-verify` runs): rebuild the
/// client crypto stack, re-encrypt in signature order, re-execute,
/// re-serialize, and compare both hashes. A server that computed something
/// other than the registered program — or tampered with a result — cannot
/// produce a matching outputs hash.
///
//===----------------------------------------------------------------------===//

#ifndef EVA_SERVICE_AUDIT_H
#define EVA_SERVICE_AUDIT_H

#include "eva/core/Compiler.h"
#include "eva/support/Error.h"
#include "eva/support/ThreadAnnotations.h"

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace eva {

/// FNV-1a 64-bit, resumable: pass the previous return value as \p State to
/// accumulate across fragments.
uint64_t fnv1a64(std::string_view Data,
                 uint64_t State = 0xcbf29ce484222325ull);

/// Hash of a request's input bytes exactly as they travel on the wire:
/// entries are name-sorted and domain-separated (cipher/plain tag + name +
/// payload, each length-prefixed), so the hash is independent of wire
/// arrival order but pins every byte of every payload.
uint64_t auditHashInputs(
    const std::vector<std::pair<std::string, std::string>> &CipherInputs,
    const std::vector<std::pair<std::string, std::vector<double>>>
        &PlainInputs);

/// Hash of the response's output ciphertext bytes (name-sorted, each
/// length-prefixed), as serialized into the EXECUTE_RESULT frame.
uint64_t auditHashOutputs(
    const std::vector<std::pair<std::string, std::string>> &Outputs);

/// One audit-log line, parsed or about to be formatted.
struct AuditRecord {
  uint64_t RequestId = 0;
  uint64_t SessionId = 0;
  std::string Program;
  uint64_t InputsHash = 0;
  uint64_t OutputsHash = 0;
  uint64_t DecodeUs = 0;
  uint64_t QueueUs = 0;
  uint64_t ExecuteUs = 0;
  uint64_t EncodeUs = 0;
  uint64_t TotalUs = 0;
};

/// `key=value` tokens, hashes as 16 lowercase hex digits, no newline.
std::string formatAuditLine(const AuditRecord &R);

/// Inverse of formatAuditLine; tolerant of extra keys (forward compat),
/// strict about the ones it needs (req, program, inputs, outputs).
Expected<AuditRecord> parseAuditLine(std::string_view Line);

/// Append-only audit sink (ServiceConfig::AuditLog names the file). Thread
/// safe; each record is one line, flushed eagerly so a crashed server loses
/// at most the in-flight request.
class AuditLog {
public:
  AuditLog() = default;
  ~AuditLog();
  AuditLog(const AuditLog &) = delete;
  AuditLog &operator=(const AuditLog &) = delete;

  /// Opens \p Path for appending ("-" means stderr).
  Status open(const std::string &Path) EVA_EXCLUDES(M);
  /// Whether a sink is attached. Takes the lock: a relaxed read here would
  /// race a concurrent open() (caught by -Wthread-safety; regression test
  /// in TelemetryTest runs enabled/append/open concurrently under TSan).
  bool enabled() const EVA_EXCLUDES(M) {
    LockGuard Lock(M);
    return Sink != nullptr;
  }
  void append(const AuditRecord &R) EVA_EXCLUDES(M);

private:
  /// Leaf lock: guards the sink pointer and the eager fwrite/fflush pair
  /// (stdio buffering is not relied upon for line atomicity).
  mutable Mutex M;
  std::FILE *Sink EVA_GUARDED_BY(M) = nullptr;
  bool OwnsSink EVA_GUARDED_BY(M) = false;
};

/// The verdict of one local re-execution of an audited request.
struct AuditReplayResult {
  uint64_t InputsHash = 0;  ///< recomputed from re-encrypted wire bytes
  uint64_t OutputsHash = 0; ///< recomputed from re-executed wire bytes
  bool InputsMatch = false;
  bool OutputsMatch = false;
};

/// Re-executes an audited request under ReproducibleSeeds and compares
/// hashes byte-for-byte: rebuilds the client crypto stack from \p KeySeed
/// (exactly as ServiceClient::openSession does), re-encrypts \p Inputs in
/// signature order, serializes them seed-compressed (the input hash),
/// executes \p CP with the serial executor (bit-identical to the server's
/// parallel one), and serializes the outputs (the output hash). \p CP must
/// be the same compiled program the server registered — compile the same
/// .evabin with the same options.
Expected<AuditReplayResult>
auditReplay(const AuditRecord &R, const CompiledProgram &CP, uint64_t KeySeed,
            const std::map<std::string, std::vector<double>> &Inputs);

} // namespace eva

#endif // EVA_SERVICE_AUDIT_H
