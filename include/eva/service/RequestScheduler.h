//===- eva/service/RequestScheduler.h - Request queue/batching --*- C++ -*-===//
//
// Part of the EVA-CKKS project (PLDI 2020 "EVA" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Queues encrypted requests and executes them on session executors,
/// returning futures. Worker threads drain the queue in FIFO batches (one
/// lock acquisition and one wakeup per batch, not per request), so bursts
/// from many tenants amortize scheduling overhead; each drain claims at
/// most a fair share of the queue (ceil(depth / workers), capped at
/// MaxBatch), so requests of different sessions run concurrently across
/// workers while a per-session mutex keeps each tenant's requests ordered. Inside a request, the session's
/// ParallelCkksExecutor schedules the instruction DAG over its cooperative
/// thread pool — the scheduler worker participates in that schedule rather
/// than blocking (PR-2's threading model). A bounded queue provides
/// backpressure: submissions beyond MaxQueueDepth are rejected outright
/// rather than accepted into an unbounded backlog.
///
//===----------------------------------------------------------------------===//

#ifndef EVA_SERVICE_REQUESTSCHEDULER_H
#define EVA_SERVICE_REQUESTSCHEDULER_H

#include "eva/service/Session.h"
#include "eva/support/Telemetry.h"
#include "eva/support/ThreadAnnotations.h"

#include <chrono>
#include <deque>
#include <future>
#include <thread>
#include <vector>

namespace eva {

struct SchedulerConfig {
  /// Concurrent requests in flight (across sessions).
  size_t Workers = 2;
  /// Submissions beyond this many queued requests are rejected.
  size_t MaxQueueDepth = 256;
  /// Max requests a worker claims per queue drain.
  size_t MaxBatch = 8;
};

struct SchedulerStats {
  uint64_t Submitted = 0;
  uint64_t Completed = 0;
  uint64_t Failed = 0;   ///< requests whose execution threw
  uint64_t Rejected = 0; ///< backpressure rejections
  uint64_t Batches = 0;  ///< queue drains that claimed >= 1 request
};

class RequestScheduler {
public:
  using Result = Expected<std::map<std::string, Ciphertext>>;

  /// \p Metrics, when non-null, receives queue-depth/throughput/queue-wait
  /// telemetry (see support/Telemetry.h); null disables recording.
  explicit RequestScheduler(SchedulerConfig Config = {},
                            MetricsRegistry *Metrics = nullptr);
  ~RequestScheduler();

  RequestScheduler(const RequestScheduler &) = delete;
  RequestScheduler &operator=(const RequestScheduler &) = delete;

  /// Enqueues one request; the future resolves when it executed (or carries
  /// the failure diagnostic). Fails immediately when the queue is full.
  /// \p Trace, when non-null, must stay alive until the future resolves
  /// (the submitter blocks on it); the worker fills the queue-wait span and
  /// hands the context to the session before resolving the promise.
  Expected<std::future<Result>> submit(std::shared_ptr<Session> S,
                                       SealedInputs Inputs,
                                       TraceContext *Trace = nullptr)
      EVA_EXCLUDES(M);

  /// Blocks until every queued request has completed.
  void drain() EVA_EXCLUDES(M);

  SchedulerStats stats() const EVA_EXCLUDES(M);

private:
  struct Request {
    std::shared_ptr<Session> S;
    SealedInputs Inputs;
    std::promise<Result> Promise;
    TraceContext *Trace = nullptr;
    std::chrono::steady_clock::time_point EnqueueTime;
  };

  void workerLoop() EVA_EXCLUDES(M);

  SchedulerConfig Config;
  MetricsRegistry *Metrics;
  /// Lock order: M is acquired after SessionManager::M (never holds a
  /// session's ExecMutex; workers call Session::execute unlocked).
  mutable Mutex M;
  CondVar QueueCv;
  CondVar IdleCv;
  std::deque<Request> Queue EVA_GUARDED_BY(M);
  size_t InFlight EVA_GUARDED_BY(M) = 0;
  bool Stopping EVA_GUARDED_BY(M) = false;
  SchedulerStats Stats EVA_GUARDED_BY(M);
  std::vector<std::thread> Workers;
};

} // namespace eva

#endif // EVA_SERVICE_REQUESTSCHEDULER_H
