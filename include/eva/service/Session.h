//===- eva/service/Session.h - Per-client sessions --------------*- C++ -*-===//
//
// Part of the EVA-CKKS project (PLDI 2020 "EVA" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A session binds one client's evaluation keys to one registered program.
/// The server-side workspace holds only what evaluation needs — context,
/// encoder, and the client-supplied relinearization/Galois keys; the secret
/// key exists solely on the client (CkksWorkspace::createServer leaves the
/// key generator, encryptor, and decryptor null). Each session owns a
/// ParallelCkksExecutor whose cooperative thread pool executes that
/// client's requests; a per-session mutex serializes them, while different
/// sessions run concurrently under the RequestScheduler.
///
//===----------------------------------------------------------------------===//

#ifndef EVA_SERVICE_SESSION_H
#define EVA_SERVICE_SESSION_H

#include "eva/api/Runner.h"
#include "eva/runtime/CkksExecutor.h"
#include "eva/service/ProgramRegistry.h"
#include "eva/support/Telemetry.h"
#include "eva/support/ThreadAnnotations.h"

#include <map>
#include <memory>

namespace eva {

class Session {
public:
  /// The session executes through the same api/Runner every other caller
  /// uses, in cipher-in/cipher-out mode: the evaluation-only workspace has
  /// no decryptor, so the runner validates the request against the typed
  /// program signature, schedules it on the parallel executor, and hands
  /// the output ciphertexts back.
  Session(uint64_t Id, std::shared_ptr<const RegisteredProgram> Prog,
          std::shared_ptr<CkksWorkspace> WS, size_t ExecThreads,
          MetricsRegistry *Metrics = nullptr);

  uint64_t id() const { return Id; }
  const RegisteredProgram &program() const { return *Prog; }
  const CkksContext &context() const { return *WS->Context; }

  /// Runs one encrypted request to completion; malformed requests come
  /// back as diagnostics, not aborts. Requests of the same session are
  /// serialized (they share the executor); the scheduler overlaps requests
  /// of different sessions. \p Trace, when non-null, receives the execute
  /// span; the session also publishes compute-latency and executor-stat
  /// roll-ups into its MetricsRegistry.
  Expected<std::map<std::string, Ciphertext>>
  execute(SealedInputs Inputs, TraceContext *Trace = nullptr)
      EVA_EXCLUDES(ExecMutex);

private:
  uint64_t Id;
  std::shared_ptr<const RegisteredProgram> Prog;
  std::shared_ptr<CkksWorkspace> WS;
  /// The runner (and the executor pool behind it) admits one request at a
  /// time; ExecMutex serializes a session's requests while the scheduler
  /// overlaps distinct sessions. Leaf in the declared lock order: held
  /// across execute() but never while touching SessionManager::M.
  std::unique_ptr<Runner> Exec EVA_PT_GUARDED_BY(ExecMutex);
  Mutex ExecMutex;
  MetricsRegistry *Metrics;
};

/// Approximate resident size of a session's pinned evaluation keys (the
/// memory the MaxSessions bound protects): every key-switching component
/// polynomial at 8 bytes per coefficient. Seed-compressed halves are
/// counted expanded — that is what the server actually pins.
size_t pinnedKeyBytes(const RelinKeys &Rk, const GaloisKeys &Gk);

/// Owns the live sessions; thread-safe. Bounded: key material is pinned in
/// memory for a session's whole lifetime, so an untrusted client looping
/// OPEN_SESSION must hit a limit, not the server's OOM killer.
class SessionManager {
public:
  /// \p Metrics, when non-null, tracks open sessions, lifetime
  /// opened/rejected/closed counts, and pinned evaluation-key bytes.
  explicit SessionManager(size_t ExecThreadsPerSession = 1,
                          size_t MaxSessions = 64,
                          MetricsRegistry *Metrics = nullptr)
      : ExecThreads(ExecThreadsPerSession), MaxSessions(MaxSessions),
        Metrics(Metrics) {}

  /// Validates the keys against the program (createServer checks Galois
  /// coverage and relin presence) and publishes a fresh session. Fails
  /// when the session limit is reached.
  Expected<std::shared_ptr<Session>>
  open(std::shared_ptr<const RegisteredProgram> Prog, RelinKeys Rk,
       GaloisKeys Gk) EVA_EXCLUDES(M);

  std::shared_ptr<Session> find(uint64_t Id) const EVA_EXCLUDES(M);
  bool close(uint64_t Id) EVA_EXCLUDES(M);
  size_t activeCount() const EVA_EXCLUDES(M);
  /// Advisory capacity probe so callers can refuse a session request
  /// before paying for key deserialization; open() remains authoritative.
  bool atCapacity() const EVA_EXCLUDES(M);

private:
  /// Declared lock order: SessionManager::M before Session::ExecMutex
  /// (open() constructs sessions under M; execution never reaches back into
  /// the manager). tools/evalint-cpp rejects the inversion.
  mutable Mutex M;
  uint64_t NextId EVA_GUARDED_BY(M) = 1;
  size_t ExecThreads;
  size_t MaxSessions;
  MetricsRegistry *Metrics;
  std::map<uint64_t, std::shared_ptr<Session>> Sessions EVA_GUARDED_BY(M);
  /// Pinned-key accounting per session id, so close() can subtract what
  /// open() added.
  std::map<uint64_t, size_t> KeyBytes EVA_GUARDED_BY(M);
};

} // namespace eva

#endif // EVA_SERVICE_SESSION_H
