//===- eva/service/Session.h - Per-client sessions --------------*- C++ -*-===//
//
// Part of the EVA-CKKS project (PLDI 2020 "EVA" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A session binds one client's evaluation keys to one registered program.
/// The server-side workspace holds only what evaluation needs — context,
/// encoder, and the client-supplied relinearization/Galois keys; the secret
/// key exists solely on the client (CkksWorkspace::createServer leaves the
/// key generator, encryptor, and decryptor null). Each session owns a
/// ParallelCkksExecutor whose cooperative thread pool executes that
/// client's requests; a per-session mutex serializes them, while different
/// sessions run concurrently under the RequestScheduler.
///
//===----------------------------------------------------------------------===//

#ifndef EVA_SERVICE_SESSION_H
#define EVA_SERVICE_SESSION_H

#include "eva/api/Runner.h"
#include "eva/runtime/CkksExecutor.h"
#include "eva/service/ProgramRegistry.h"
#include "eva/support/Telemetry.h"

#include <map>
#include <memory>
#include <mutex>

namespace eva {

class Session {
public:
  /// The session executes through the same api/Runner every other caller
  /// uses, in cipher-in/cipher-out mode: the evaluation-only workspace has
  /// no decryptor, so the runner validates the request against the typed
  /// program signature, schedules it on the parallel executor, and hands
  /// the output ciphertexts back.
  Session(uint64_t Id, std::shared_ptr<const RegisteredProgram> Prog,
          std::shared_ptr<CkksWorkspace> WS, size_t ExecThreads,
          MetricsRegistry *Metrics = nullptr);

  uint64_t id() const { return Id; }
  const RegisteredProgram &program() const { return *Prog; }
  const CkksContext &context() const { return *WS->Context; }

  /// Runs one encrypted request to completion; malformed requests come
  /// back as diagnostics, not aborts. Requests of the same session are
  /// serialized (they share the executor); the scheduler overlaps requests
  /// of different sessions. \p Trace, when non-null, receives the execute
  /// span; the session also publishes compute-latency and executor-stat
  /// roll-ups into its MetricsRegistry.
  Expected<std::map<std::string, Ciphertext>>
  execute(SealedInputs Inputs, TraceContext *Trace = nullptr);

private:
  uint64_t Id;
  std::shared_ptr<const RegisteredProgram> Prog;
  std::shared_ptr<CkksWorkspace> WS;
  std::unique_ptr<Runner> Exec;
  std::mutex ExecMutex;
  MetricsRegistry *Metrics;
};

/// Approximate resident size of a session's pinned evaluation keys (the
/// memory the MaxSessions bound protects): every key-switching component
/// polynomial at 8 bytes per coefficient. Seed-compressed halves are
/// counted expanded — that is what the server actually pins.
size_t pinnedKeyBytes(const RelinKeys &Rk, const GaloisKeys &Gk);

/// Owns the live sessions; thread-safe. Bounded: key material is pinned in
/// memory for a session's whole lifetime, so an untrusted client looping
/// OPEN_SESSION must hit a limit, not the server's OOM killer.
class SessionManager {
public:
  /// \p Metrics, when non-null, tracks open sessions, lifetime
  /// opened/rejected/closed counts, and pinned evaluation-key bytes.
  explicit SessionManager(size_t ExecThreadsPerSession = 1,
                          size_t MaxSessions = 64,
                          MetricsRegistry *Metrics = nullptr)
      : ExecThreads(ExecThreadsPerSession), MaxSessions(MaxSessions),
        Metrics(Metrics) {}

  /// Validates the keys against the program (createServer checks Galois
  /// coverage and relin presence) and publishes a fresh session. Fails
  /// when the session limit is reached.
  Expected<std::shared_ptr<Session>>
  open(std::shared_ptr<const RegisteredProgram> Prog, RelinKeys Rk,
       GaloisKeys Gk);

  std::shared_ptr<Session> find(uint64_t Id) const;
  bool close(uint64_t Id);
  size_t activeCount() const;
  /// Advisory capacity probe so callers can refuse a session request
  /// before paying for key deserialization; open() remains authoritative.
  bool atCapacity() const;

private:
  mutable std::mutex M;
  uint64_t NextId = 1;
  size_t ExecThreads;
  size_t MaxSessions;
  MetricsRegistry *Metrics;
  std::map<uint64_t, std::shared_ptr<Session>> Sessions;
  /// Pinned-key accounting per session id, so close() can subtract what
  /// open() added.
  std::map<uint64_t, size_t> KeyBytes;
};

} // namespace eva

#endif // EVA_SERVICE_SESSION_H
