//===- eva/service/Service.h - The encrypted-compute service ----*- C++ -*-===//
//
// Part of the EVA-CKKS project (PLDI 2020 "EVA" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transport-independent service core: program registry + session
/// manager + request scheduler behind a single dispatch() over serialized
/// messages. The socket server (Server.h) and the in-process transport
/// (Client.h) both funnel through dispatch, so tests exercise byte-for-byte
/// the same path a remote client exercises — including every defensive
/// deserialization step — without socket flakiness.
///
/// Threat model: the server operates on ciphertexts and evaluation keys
/// only. No dispatch path deserializes a secret key (the wire schema has no
/// message for one), and requests are fully validated — session exists,
/// inputs complete, ciphertexts well-formed at the expected level and scale
/// — before they reach an executor, because executor invariant violations
/// are process-fatal by design.
///
//===----------------------------------------------------------------------===//

#ifndef EVA_SERVICE_SERVICE_H
#define EVA_SERVICE_SERVICE_H

#include "eva/service/Audit.h"
#include "eva/service/Messages.h"
#include "eva/service/ProgramRegistry.h"
#include "eva/service/RequestScheduler.h"
#include "eva/service/Session.h"
#include "eva/support/Telemetry.h"

#include <atomic>

namespace eva {

struct ServiceConfig {
  SchedulerConfig Scheduler;
  /// Cooperative pool size of each session's executor (1 = the scheduler
  /// worker runs the whole DAG itself).
  size_t ExecThreadsPerSession = 1;
  /// Open sessions pin their key material; beyond this many, OPEN_SESSION
  /// is rejected (untrusted clients must not be able to OOM the server).
  size_t MaxSessions = 64;
  /// Hot-path metrics recording. Off leaves the registry registered but
  /// silent (GET_METRICS still answers) — the baseline the <2% overhead
  /// bench compares against.
  bool Telemetry = true;
  /// When non-empty, append one transcript-hash audit line per EXECUTE to
  /// this file ("-" = stderr); see service/Audit.h.
  std::string AuditLog;
};

class Service {
public:
  explicit Service(ServiceConfig Config = {});

  ProgramRegistry &registry() { return Registry; }
  const ProgramRegistry &registry() const { return Registry; }

  /// Handles one request frame and produces the response frame. Never
  /// throws and never aborts on malformed payloads: every failure returns
  /// a MessageType::Error response.
  std::pair<MessageType, std::string> dispatch(MessageType Type,
                                               std::string_view Payload);

  SchedulerStats schedulerStats() const { return Scheduler.stats(); }
  size_t activeSessionCount() const { return Sessions.activeCount(); }

  /// The live metrics registry (in-process instrumentation) and its
  /// current snapshot (what GET_METRICS returns and SIGUSR1/shutdown dump).
  MetricsRegistry &metrics() { return Metrics; }
  MetricsSnapshot metricsSnapshot() const { return Metrics.snapshot(); }

private:
  std::pair<MessageType, std::string> handleListPrograms();
  std::pair<MessageType, std::string> handleOpenSession(std::string_view);
  std::pair<MessageType, std::string> handleExecute(std::string_view);
  std::pair<MessageType, std::string> handleCloseSession(std::string_view);
  std::pair<MessageType, std::string> handleGetMetrics();
  /// errorFrame + per-cause error counter + warn-level log.
  std::pair<MessageType, std::string> errorResponse(const char *Cause,
                                                    std::string Message);

  ServiceConfig Config;
  MetricsRegistry Metrics;
  ProgramRegistry Registry;
  SessionManager Sessions;
  RequestScheduler Scheduler;
  AuditLog Audit;
  std::atomic<uint64_t> NextRequestId{1};
};

} // namespace eva

#endif // EVA_SERVICE_SERVICE_H
