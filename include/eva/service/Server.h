//===- eva/service/Server.h - Loopback socket server ------------*- C++ -*-===//
//
// Part of the EVA-CKKS project (PLDI 2020 "EVA" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The socket front-end of the service (what `evaserve` runs): accepts TCP
/// connections on 127.0.0.1, reads request frames, funnels them through
/// Service::dispatch, and writes response frames. One thread per
/// connection; concurrency across tenants comes from the RequestScheduler
/// behind dispatch. Binding port 0 picks an ephemeral port (port() reports
/// it), which is how tests run a real server without port collisions.
///
//===----------------------------------------------------------------------===//

#ifndef EVA_SERVICE_SERVER_H
#define EVA_SERVICE_SERVER_H

#include "eva/service/Service.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace eva {

class ServiceServer {
public:
  /// \p MaxConnections bounds concurrent client connections (each pins a
  /// thread and an fd); excess connects are closed immediately.
  explicit ServiceServer(Service &Svc, size_t MaxConnections = 128)
      : Svc(Svc), MaxConnections(MaxConnections) {}
  ~ServiceServer() { stop(); }

  ServiceServer(const ServiceServer &) = delete;
  ServiceServer &operator=(const ServiceServer &) = delete;

  /// Binds 127.0.0.1:\p Port (0 = ephemeral), starts accepting.
  Status start(uint16_t Port = 0);

  /// The bound port (valid after start()).
  uint16_t port() const { return BoundPort; }

  /// Stops accepting, closes the listener, and joins all threads. Safe to
  /// call repeatedly.
  void stop();

private:
  /// One live (or finished-but-unreaped) connection. The server owns the
  /// fd: serveConnection marks Done and the reaper/stop() joins and closes,
  /// so stop() can safely shutdown() the fd of a blocked reader without
  /// racing a concurrent close.
  struct Connection {
    std::thread T;
    int Fd = -1;
    std::atomic<bool> Done{false};
  };

  void acceptLoop();
  void serveConnection(Connection *C);
  /// Joins and closes finished connections (called from the accept loop so
  /// a long-lived daemon does not accumulate dead threads).
  void reapFinished();

  Service &Svc;
  size_t MaxConnections;
  int ListenFd = -1;
  uint16_t BoundPort = 0;
  std::atomic<bool> Stopping{false};
  std::thread Acceptor;
  std::mutex ConnMutex;
  std::vector<std::unique_ptr<Connection>> Connections;
};

} // namespace eva

#endif // EVA_SERVICE_SERVER_H
