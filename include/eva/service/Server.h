//===- eva/service/Server.h - Loopback socket server ------------*- C++ -*-===//
//
// Part of the EVA-CKKS project (PLDI 2020 "EVA" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The socket front-end of the service (what `evaserve` runs): accepts TCP
/// connections on 127.0.0.1, reads request frames, funnels them through
/// Service::dispatch, and writes response frames. One thread per
/// connection; concurrency across tenants comes from the RequestScheduler
/// behind dispatch. Binding port 0 picks an ephemeral port (port() reports
/// it), which is how tests run a real server without port collisions.
///
//===----------------------------------------------------------------------===//

#ifndef EVA_SERVICE_SERVER_H
#define EVA_SERVICE_SERVER_H

#include "eva/service/Service.h"
#include "eva/support/ThreadAnnotations.h"

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

namespace eva {

class ServiceServer {
public:
  /// \p MaxConnections bounds concurrent client connections (each pins a
  /// thread and an fd); excess connects are closed immediately.
  explicit ServiceServer(Service &Svc, size_t MaxConnections = 128)
      : Svc(Svc), MaxConnections(MaxConnections) {}
  ~ServiceServer() { stop(); }

  ServiceServer(const ServiceServer &) = delete;
  ServiceServer &operator=(const ServiceServer &) = delete;

  /// Binds 127.0.0.1:\p Port (0 = ephemeral), starts accepting.
  Status start(uint16_t Port = 0);

  /// The bound port (valid after start()).
  uint16_t port() const { return BoundPort; }

  /// Stops accepting, closes the listener, and joins all threads. Safe to
  /// call repeatedly.
  void stop() EVA_EXCLUDES(ConnMutex);

private:
  /// One live (or finished-but-unreaped) connection. The server owns the
  /// fd: serveConnection marks Done and the reaper/stop() joins and closes,
  /// so stop() can safely shutdown() the fd of a blocked reader without
  /// racing a concurrent close.
  struct Connection {
    std::thread T;
    int Fd = -1;
    std::atomic<bool> Done{false};
  };

  void acceptLoop() EVA_EXCLUDES(ConnMutex);
  void serveConnection(Connection *C);
  /// Joins and closes finished connections (called from the accept loop so
  /// a long-lived daemon does not accumulate dead threads). Joins happen
  /// after the finished connections have been moved out of the guarded
  /// vector, so the lock is never held across a join.
  void reapFinished() EVA_EXCLUDES(ConnMutex);

  Service &Svc;
  size_t MaxConnections;
  int ListenFd = -1;
  uint16_t BoundPort = 0;
  std::atomic<bool> Stopping{false};
  std::thread Acceptor;
  /// Leaf lock: guards only the connection list. Accept/read/write
  /// syscalls and thread joins all happen with it released (evalint-cpp
  /// enforces the syscall half).
  Mutex ConnMutex;
  std::vector<std::unique_ptr<Connection>> Connections
      EVA_GUARDED_BY(ConnMutex);
};

} // namespace eva

#endif // EVA_SERVICE_SERVER_H
