//===- eva/service/Framing.h - Length-prefixed socket framing ---*- C++ -*-===//
//
// Part of the EVA-CKKS project (PLDI 2020 "EVA" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The byte-level transport protocol of the service: every message travels
/// as one frame
///
///   +------+------+----------------+--------------------+
///   | 'EVAS' (4B) | type (1B)      | length (4B, LE)    |  payload ...
///   +------+------+----------------+--------------------+
///
/// followed by `length` payload bytes (a serialized message of Messages.h).
/// Readers verify the magic, bound the length (MaxFramePayload), and read
/// to completion across partial reads and EINTR; any violation closes the
/// connection with a diagnostic rather than desynchronizing the stream.
///
//===----------------------------------------------------------------------===//

#ifndef EVA_SERVICE_FRAMING_H
#define EVA_SERVICE_FRAMING_H

#include "eva/service/Messages.h"
#include "eva/support/Error.h"

#include <string>
#include <string_view>

namespace eva {

/// 'E' 'V' 'A' 'S' on the wire.
inline constexpr unsigned char FrameMagic[4] = {'E', 'V', 'A', 'S'};

/// Largest accepted payload (256 MiB): comfortably above the biggest
/// seed-compressed Galois-key upload at the largest supported degree, far
/// below a hostile length that would balloon server memory.
inline constexpr uint32_t MaxFramePayload = 256u << 20;

struct Frame {
  MessageType Type = MessageType::Error;
  std::string Payload;
};

/// Writes one complete frame to \p Fd.
Status writeFrame(int Fd, MessageType Type, std::string_view Payload);

/// Reads one complete frame from \p Fd. A clean EOF before any header byte
/// yields the distinguished message "connection closed".
Expected<Frame> readFrame(int Fd);

} // namespace eva

#endif // EVA_SERVICE_FRAMING_H
