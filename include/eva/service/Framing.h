//===- eva/service/Framing.h - Length-prefixed socket framing ---*- C++ -*-===//
//
// Part of the EVA-CKKS project (PLDI 2020 "EVA" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The byte-level transport protocol of the service: every message travels
/// as one frame
///
///   +-------------+--------------+-----------+------------------+
///   | 'EVAS' (4B) | version (1B) | type (1B) | length (4B, LE)  |  payload
///   +-------------+--------------+-----------+------------------+
///
/// followed by `length` payload bytes (a serialized message of Messages.h).
/// Readers verify the magic, check the protocol version against the accept
/// window [MinFrameVersion, FrameVersion], bound the length
/// (MaxFramePayload), and read to completion across partial reads and
/// EINTR; any violation closes the connection with a diagnostic rather
/// than desynchronizing the stream.
///
/// Versioning policy: writers always stamp FrameVersion; readers accept
/// the whole window [MinFrameVersion, FrameVersion] (all window versions
/// share this header layout), so wire additions — new message types, new
/// message fields — bump FrameVersion while leaving MinFrameVersion
/// behind. Only a framing-level layout break moves MinFrameVersion, and
/// the reject diagnostic names the window so a mismatched peer is
/// actionable from its own error message. Version history:
///   1 — first versioned framing
///   2 — GET_METRICS/METRICS messages, request ids in EXECUTE_RESULT
///
//===----------------------------------------------------------------------===//

#ifndef EVA_SERVICE_FRAMING_H
#define EVA_SERVICE_FRAMING_H

#include "eva/service/Messages.h"
#include "eva/support/Error.h"

#include <string>
#include <string_view>

namespace eva {

/// 'E' 'V' 'A' 'S' on the wire.
inline constexpr unsigned char FrameMagic[4] = {'E', 'V', 'A', 'S'};

/// The protocol version writers stamp into every frame header.
inline constexpr uint8_t FrameVersion = 2;

/// Oldest version readers still accept (same header layout).
inline constexpr uint8_t MinFrameVersion = 1;

/// Largest accepted payload (256 MiB): comfortably above the biggest
/// seed-compressed Galois-key upload at the largest supported degree, far
/// below a hostile length that would balloon server memory.
inline constexpr uint32_t MaxFramePayload = 256u << 20;

struct Frame {
  MessageType Type = MessageType::Error;
  std::string Payload;
};

/// Writes one complete frame to \p Fd.
Status writeFrame(int Fd, MessageType Type, std::string_view Payload);

/// Reads one complete frame from \p Fd. A clean EOF before any header byte
/// yields the distinguished message "connection closed".
Expected<Frame> readFrame(int Fd);

} // namespace eva

#endif // EVA_SERVICE_FRAMING_H
