//===- eva/service/Client.h - Service clients -------------------*- C++ -*-===//
//
// Part of the EVA-CKKS project (PLDI 2020 "EVA" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client half of the deployment split (paper Section 2): everything
/// that touches plaintexts or the secret key lives here. A ServiceClient
/// fetches a program's parameter signature, derives the identical
/// encryption context the server uses (prime generation is deterministic
/// from the bit sizes), generates its own keys, uploads only the
/// evaluation keys (seed-compressed), encrypts inputs with seed-compressed
/// symmetric ciphertexts, and decrypts results locally.
///
/// Transports: SocketTransport speaks the framing protocol to a remote
/// evaserve; InProcessTransport calls Service::dispatch directly, so tests
/// and benches drive the full encode -> encrypt -> submit -> execute ->
/// decrypt loop through the same serialized-message path without sockets.
///
//===----------------------------------------------------------------------===//

#ifndef EVA_SERVICE_CLIENT_H
#define EVA_SERVICE_CLIENT_H

#include "eva/runtime/CkksExecutor.h"
#include "eva/service/Framing.h"
#include "eva/service/Service.h"
#include "eva/support/ThreadAnnotations.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace eva {

/// One request/response exchange. Implementations must be usable from
/// multiple client threads.
class Transport {
public:
  virtual ~Transport() = default;
  virtual Expected<Frame> roundTrip(MessageType Type,
                                    std::string_view Payload) = 0;
};

/// Calls Service::dispatch in-process (same serialized messages, no I/O).
class InProcessTransport : public Transport {
public:
  explicit InProcessTransport(Service &Svc) : Svc(Svc) {}
  Expected<Frame> roundTrip(MessageType Type,
                            std::string_view Payload) override {
    std::pair<MessageType, std::string> R = Svc.dispatch(Type, Payload);
    return Frame{R.first, std::move(R.second)};
  }

private:
  Service &Svc;
};

/// Speaks the framing protocol over a loopback TCP connection.
class SocketTransport : public Transport {
public:
  static Expected<std::unique_ptr<SocketTransport>>
  connectLoopback(uint16_t Port);
  ~SocketTransport() override;

  Expected<Frame> roundTrip(MessageType Type,
                            std::string_view Payload) override
      EVA_EXCLUDES(IoMutex);

private:
  explicit SocketTransport(int Fd) : Fd(Fd) {}
  /// One exchange at a time per connection: deliberately held across the
  /// blocking writeFrame/readFrame pair, because the frame exchange IS the
  /// critical section (interleaved frames would corrupt the stream). The
  /// blocking-syscall-under-lock rule in tools/evalint-cpp carries a
  /// matching documented allowance for roundTrip.
  Mutex IoMutex;
  int Fd;
};

/// The client-side sealed request: encrypted inputs plus the c1 expansion
/// seeds that let the wire carry (c0, seed) instead of (c0, c1).
struct SealedRequest {
  SealedInputs Inputs;
  std::map<std::string, uint64_t> C1Seeds;
};

class ServiceClient {
public:
  explicit ServiceClient(Transport &T) : T(T) {}

  Expected<std::vector<ParamSignature>> listPrograms();

  /// Scrapes the server's live metrics snapshot (GET_METRICS/METRICS).
  /// Works without an open session — monitoring needs no keys.
  Expected<MetricsSnapshot> getMetrics();

  /// Builds the client crypto stack for \p Sig (context, keys seeded from
  /// \p KeySeed) and opens a server session with the evaluation keys.
  /// \p ReproducibleSeeds additionally derives the published expansion
  /// seeds from \p KeySeed (see KeyGenerator) so the whole exchange is a
  /// pure function of the seed — the mode behind cross-backend goldens.
  Status openSession(const ParamSignature &Sig, uint64_t KeySeed,
                     bool ReproducibleSeeds = false);

  /// Encodes and encrypts \p Inputs per the program's input schema.
  Expected<SealedRequest>
  encryptInputs(const std::map<std::string, std::vector<double>> &Inputs);

  /// Encodes and symmetrically encrypts one declared cipher input; returns
  /// the ciphertext and its c1 expansion seed. Used by callers (the remote
  /// Runner) that assemble a SealedRequest from mixed plain/ciphertext
  /// values instead of an all-plain map.
  Expected<std::pair<Ciphertext, uint64_t>>
  encryptInput(const std::string &Name, const std::vector<double> &Values);

  /// Submits a sealed request; returns the encrypted outputs.
  Expected<std::map<std::string, Ciphertext>> submit(const SealedRequest &Req);

  /// Decrypts and decodes outputs to vec_size values each.
  std::map<std::string, std::vector<double>>
  decryptOutputs(const std::map<std::string, Ciphertext> &Outputs) const;

  /// encryptInputs + submit + decryptOutputs.
  Expected<std::map<std::string, std::vector<double>>>
  call(const std::map<std::string, std::vector<double>> &Inputs);

  Status closeSession();

  bool hasSession() const { return SessionId != 0; }
  uint64_t sessionId() const { return SessionId; }
  /// Server-assigned trace id of the most recent successful submit();
  /// 0 before any request or against servers predating request tracing.
  uint64_t lastRequestId() const { return LastRequestId; }
  const ParamSignature &signature() const { return Sig; }
  std::shared_ptr<const CkksContext> context() const { return Ctx; }
  const RelinKeys &relinKeys() const { return Rk; }
  const GaloisKeys &galoisKeys() const { return Gk; }
  const SecretKey &secretKey() const { return KeyGen->secretKey(); }

private:
  /// Sends one message and insists on \p Want back (Error frames become
  /// diagnostics).
  Expected<std::string> exchange(MessageType Send, std::string_view Payload,
                                 MessageType Want);

  Transport &T;
  ParamSignature Sig;
  uint64_t SessionId = 0;
  uint64_t LastRequestId = 0;
  std::shared_ptr<const CkksContext> Ctx;
  std::unique_ptr<CkksEncoder> Encoder;
  std::unique_ptr<KeyGenerator> KeyGen;
  std::unique_ptr<Encryptor> Enc; // symmetric-only
  std::unique_ptr<Decryptor> Dec;
  RelinKeys Rk;
  GaloisKeys Gk;
};

} // namespace eva

#endif // EVA_SERVICE_CLIENT_H
