//===- eva/service/ProgramRegistry.h - Compiled-program registry -*- C++ -*-===//
//
// Part of the EVA-CKKS project (PLDI 2020 "EVA" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The server-side catalogue of executable programs. Each registered entry
/// holds the compiled program (Algorithm 1 output), the CKKS context built
/// from its selected parameters (shared by every session of that program),
/// and the parameter signature clients fetch to construct matching contexts
/// and keys. Registration compiles from source form — the same `.evabin`
/// files `evac` consumes — so the registry is the deployment boundary: drop
/// a program file on the server, clients discover it via LIST_PROGRAMS.
///
//===----------------------------------------------------------------------===//

#ifndef EVA_SERVICE_PROGRAMREGISTRY_H
#define EVA_SERVICE_PROGRAMREGISTRY_H

#include "eva/ckks/Context.h"
#include "eva/core/Compiler.h"
#include "eva/service/Messages.h"
#include "eva/support/ThreadAnnotations.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace eva {

/// One registered program: immutable once published, shared by sessions.
struct RegisteredProgram {
  CompiledProgram CP;
  std::shared_ptr<const CkksContext> Context;
  ParamSignature Signature;
};

/// Builds the client-facing signature of a compiled program.
ParamSignature signatureOf(const CompiledProgram &CP);

class ProgramRegistry {
public:
  /// Compiles \p Source with \p Options and publishes it under its program
  /// name. Fails on compile errors, context validation, or a name collision.
  Status registerSource(const Program &Source,
                        const CompilerOptions &Options = CompilerOptions::eva())
      EVA_EXCLUDES(M);

  /// Loads a source program from \p Path (proto3 wire format or textual
  /// listing, as evac accepts) and registers it.
  Status loadFromFile(const std::string &Path,
                      const CompilerOptions &Options = CompilerOptions::eva());

  std::shared_ptr<const RegisteredProgram> find(const std::string &Name) const
      EVA_EXCLUDES(M);
  std::vector<ParamSignature> signatures() const EVA_EXCLUDES(M);
  size_t size() const EVA_EXCLUDES(M);

private:
  /// Leaf lock: guards only the name -> program map; compilation happens
  /// before the lock is taken so registration never blocks lookups.
  mutable Mutex M;
  std::map<std::string, std::shared_ptr<const RegisteredProgram>> Programs
      EVA_GUARDED_BY(M);
};

} // namespace eva

#endif // EVA_SERVICE_PROGRAMREGISTRY_H
