//===- eva/service/Messages.h - Service wire messages -----------*- C++ -*-===//
//
// Part of the EVA-CKKS project (PLDI 2020 "EVA" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The request/response messages of the encrypted-compute service, in the
/// same hand-rolled proto3 wire format as the program schema (Figure 1).
/// The protocol deliberately has NO message that carries a secret key: the
/// deployment split of Section 2 — client encrypts, server computes on
/// ciphertexts — is enforced by the wire schema itself, not by convention.
///
/// \code
///   enum MessageType   { ERROR = 0; LIST_PROGRAMS = 1; PROGRAM_LIST = 2;
///                        OPEN_SESSION = 3; SESSION_OPENED = 4;
///                        EXECUTE = 5; EXECUTE_RESULT = 6;
///                        CLOSE_SESSION = 7; SESSION_CLOSED = 8;
///                        GET_METRICS = 9; METRICS = 10; }
///   message Error        { string message = 1; }
///   message InputSpec    { string name = 1; double log_scale = 2;
///                          bool cipher = 3; }
///   message OutputSpec   { string name = 1; double log_scale = 2; }
///   message ParamSignature {
///     string program = 1; uint64 poly_degree = 2; uint64 vec_size = 3;
///     repeated int32 context_bit_sizes = 4;   // storage order, special last
///     repeated uint64 rotation_steps = 5; uint32 security = 6;
///     repeated InputSpec inputs = 7; repeated OutputSpec outputs = 8;
///     bool needs_relin = 9;
///     repeated string lint_warnings = 10; }  // publish-time lint findings
///   message ProgramList  { repeated ParamSignature programs = 1; }
///   message OpenSession  { string program = 1; bytes relin_keys = 2;
///                          bytes galois_keys = 3; }   // CkksIO encodings
///   message SessionOpened{ uint64 session_id = 1; }
///   message NamedCipher  { string name = 1; bytes ciphertext = 2; }
///   message NamedPlain   { string name = 1; bytes values = 2; } // LE doubles
///   message Execute      { uint64 session_id = 1;
///                          repeated NamedCipher cipher_inputs = 2;
///                          repeated NamedPlain plain_inputs = 3; }
///   message ExecuteResult{ repeated NamedCipher outputs = 1;
///                          uint64 request_id = 2; }  // server trace id
///   message CloseSession { uint64 session_id = 1; }
///   message SessionClosed{ uint64 session_id = 1; }
///   // GET_METRICS carries an empty payload.
///   message CounterVal   { string name = 1; uint64 value = 2; }
///   message GaugeVal     { string name = 1; int64 value = 2; }
///   message HistogramVal { string name = 1; repeated double bounds = 2;
///                          repeated uint64 buckets = 3; uint64 count = 4;
///                          double sum = 5; }
///   message Metrics      { repeated CounterVal counters = 1;
///                          repeated GaugeVal gauges = 2;
///                          repeated HistogramVal histograms = 3; }
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef EVA_SERVICE_MESSAGES_H
#define EVA_SERVICE_MESSAGES_H

#include "eva/ckks/SecurityTable.h"
#include "eva/support/Error.h"
#include "eva/support/Telemetry.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace eva {

enum class MessageType : uint8_t {
  Error = 0,
  ListPrograms = 1,
  ProgramList = 2,
  OpenSession = 3,
  SessionOpened = 4,
  Execute = 5,
  ExecuteResult = 6,
  CloseSession = 7,
  SessionClosed = 8,
  GetMetrics = 9,
  Metrics = 10,
};

const char *messageTypeName(MessageType T);

/// One named program input as the client must supply it.
struct ServiceInputSpec {
  std::string Name;
  double LogScale = 0;
  bool IsCipher = true;
};

struct ServiceOutputSpec {
  std::string Name;
  double LogScale = 0;
};

/// Everything a client needs to build a matching encryption context and
/// key set for one registered program: the compiled parameters (both sides
/// derive identical primes deterministically from the bit sizes), the
/// rotation-step set requiring Galois keys, and the I/O schema.
struct ParamSignature {
  std::string ProgramName;
  uint64_t PolyDegree = 0;
  uint64_t VecSize = 0;
  std::vector<int> ContextBitSizes; ///< storage order, special prime last
  std::vector<uint64_t> RotationSteps;
  SecurityLevel Security = SecurityLevel::TC128;
  bool NeedsRelin = false;
  std::vector<ServiceInputSpec> Inputs;
  std::vector<ServiceOutputSpec> Outputs;
  /// Publish-time lint findings ("[kind] %id: message"), surfaced so clients
  /// can see the server's static-analysis verdict without recompiling.
  /// Programs that fail *verification* are refused at registration; warnings
  /// ride along here.
  std::vector<std::string> LintWarnings;
};

struct ErrorMsg {
  std::string Message;
};

struct ProgramListMsg {
  std::vector<ParamSignature> Programs;
};

struct OpenSessionMsg {
  std::string ProgramName;
  std::string RelinKeyBytes;  ///< CkksIO RelinKeys encoding (may be empty)
  std::string GaloisKeyBytes; ///< CkksIO GaloisKeys encoding (may be empty)
};

struct SessionOpenedMsg {
  uint64_t SessionId = 0;
};

struct ExecuteMsg {
  uint64_t SessionId = 0;
  /// Ciphertexts stay serialized here: only the session (which knows the
  /// program's context) can validate and decode them.
  std::vector<std::pair<std::string, std::string>> CipherInputs;
  std::vector<std::pair<std::string, std::vector<double>>> PlainInputs;
};

struct ExecuteResultMsg {
  std::vector<std::pair<std::string, std::string>> Outputs;
  /// Server-assigned trace id of the request that produced these outputs;
  /// quote it when reporting a problem and the operator can find the
  /// request's spans in the server log and audit trail. 0 from servers
  /// predating request tracing (clients must tolerate it).
  uint64_t RequestId = 0;
};

struct CloseSessionMsg {
  uint64_t SessionId = 0;
};

struct SessionClosedMsg {
  uint64_t SessionId = 0;
};

std::string serializeError(const ErrorMsg &M);
Expected<ErrorMsg> deserializeError(std::string_view Data);

std::string serializeParamSignature(const ParamSignature &Sig);
Expected<ParamSignature> deserializeParamSignature(std::string_view Data);

std::string serializeProgramList(const ProgramListMsg &M);
Expected<ProgramListMsg> deserializeProgramList(std::string_view Data);

std::string serializeOpenSession(const OpenSessionMsg &M);
Expected<OpenSessionMsg> deserializeOpenSession(std::string_view Data);

std::string serializeSessionOpened(const SessionOpenedMsg &M);
Expected<SessionOpenedMsg> deserializeSessionOpened(std::string_view Data);

std::string serializeExecute(const ExecuteMsg &M);
Expected<ExecuteMsg> deserializeExecute(std::string_view Data);

std::string serializeExecuteResult(const ExecuteResultMsg &M);
Expected<ExecuteResultMsg> deserializeExecuteResult(std::string_view Data);

std::string serializeCloseSession(const CloseSessionMsg &M);
Expected<CloseSessionMsg> deserializeCloseSession(std::string_view Data);

std::string serializeSessionClosed(const SessionClosedMsg &M);
Expected<SessionClosedMsg> deserializeSessionClosed(std::string_view Data);

/// METRICS carries a full MetricsSnapshot (support/Telemetry.h); the
/// GET_METRICS request has an empty payload.
std::string serializeMetrics(const MetricsSnapshot &Snap);
Expected<MetricsSnapshot> deserializeMetrics(std::string_view Data);

} // namespace eva

#endif // EVA_SERVICE_MESSAGES_H
