//===- eva/frontend/Expr.h - Expression-building frontend -------*- C++ -*-===//
//
// Part of the EVA-CKKS project (PLDI 2020 "EVA" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A C++ embedded DSL playing the role of the paper's PyEVA frontend
/// (Section 7.1): Expr wraps a term-graph node and overloads arithmetic and
/// shift operators, so the Sobel example of Figure 6 transliterates almost
/// line for line:
///
/// \code
///   ProgramBuilder B("sobel", 64 * 64);
///   Expr Image = B.inputCipher("image", 30);
///   Expr Rot = Image << (I * 64 + J);
///   Expr H = Rot * B.constant(F[I][J], 30);
///   B.output("out", H, 30);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef EVA_FRONTEND_EXPR_H
#define EVA_FRONTEND_EXPR_H

#include "eva/ir/Program.h"
#include "eva/support/Common.h"

#include <memory>
#include <string>
#include <vector>

namespace eva {

class ProgramBuilder;

/// A handle to a value under construction. Copyable; all Exprs share the
/// builder's program.
///
/// Misuse — arithmetic on a default-constructed (invalid) Expr, mixing
/// Exprs of two builders, `pow(0)` — is diagnosed with a precise
/// fatalError message in every build mode, never a compiled-out assert
/// turning into a null dereference.
class Expr {
public:
  Expr() = default;
  Expr(ProgramBuilder *Builder, Node *N) : Builder(Builder), N(N) {}

  Node *node() const { return N; }
  ProgramBuilder *builder() const { return Builder; }
  bool valid() const { return N != nullptr; }

  Expr operator+(const Expr &RHS) const;
  Expr operator-(const Expr &RHS) const;
  Expr operator*(const Expr &RHS) const;
  Expr operator-() const;
  /// Rotate left by \p Steps slots (PyEVA's `x << n`).
  Expr operator<<(int32_t Steps) const;
  /// Rotate right by \p Steps slots.
  Expr operator>>(int32_t Steps) const;

  /// Mixed arithmetic with a literal: the constant is materialized at the
  /// builder's default constant log scale (PyEVA's `x * 0.5`).
  Expr operator+(double RHS) const;
  Expr operator-(double RHS) const;
  Expr operator*(double RHS) const;

  /// x^k by square-and-multiply (PyEVA's `x ** k`), k >= 1 (x^0 is the
  /// plaintext constant 1 — use ProgramBuilder::constant).
  Expr pow(unsigned K) const;

private:
  friend class ProgramBuilder;
  ProgramBuilder *Builder = nullptr;
  Node *N = nullptr;
};

Expr operator+(double LHS, const Expr &RHS);
Expr operator-(double LHS, const Expr &RHS);
Expr operator*(double LHS, const Expr &RHS);

/// Owns a Program and provides the PyEVA-style construction API.
class ProgramBuilder {
public:
  /// \p DefaultConstantLogScale is the scale literals in mixed
  /// `Expr op double` arithmetic are encoded at.
  ProgramBuilder(std::string Name, uint64_t VecSize,
                 double DefaultConstantLogScale = 30)
      : Prog(std::make_unique<Program>(VecSize, std::move(Name))),
        DefaultConstScale(DefaultConstantLogScale) {}

  Program &program() { return *Prog; }
  uint64_t vecSize() const { return Prog->vecSize(); }

  /// The log scale constants created from bare literals inherit.
  double defaultConstantLogScale() const { return DefaultConstScale; }
  void setDefaultConstantLogScale(double S) { DefaultConstScale = S; }

  /// PyEVA's inputEncrypted(scale). Duplicate input names are diagnosed.
  Expr inputCipher(std::string Name, double LogScale) {
    checkFreshInputName(Name);
    return wrap(Prog->makeInput(std::move(Name), ValueType::Cipher, LogScale));
  }
  /// A plaintext (unencrypted) vector input.
  Expr inputPlain(std::string Name, double LogScale) {
    checkFreshInputName(Name);
    return wrap(Prog->makeInput(std::move(Name), ValueType::Vector, LogScale));
  }
  /// PyEVA's constant(scale, value) for scalars.
  Expr constant(double Value, double LogScale) {
    return wrap(Prog->makeScalarConstant(Value, LogScale));
  }
  /// Vector constant (replicated if shorter than vec_size).
  Expr constantVector(std::vector<double> Values, double LogScale) {
    return wrap(Prog->makeConstant(std::move(Values), LogScale));
  }

  /// PyEVA's output(expr, scale): marks an output with a desired scale.
  /// Duplicate output names and invalid expressions are diagnosed.
  void output(std::string Name, const Expr &E, double DesiredLogScale) {
    if (!E.valid())
      fatalError("output '" + Name + "' of an invalid (default-constructed) "
                 "expression");
    for (const Node *O : Prog->outputs())
      if (O->name() == Name)
        fatalError("duplicate output name '" + Name + "'");
    Node *O = Prog->makeOutput(std::move(Name), E.node());
    O->setLogScale(DesiredLogScale);
  }

  /// Sum of all vec_size slots, replicated into every slot.
  Expr sumSlots(const Expr &E) {
    return wrap(Prog->makeInstruction(OpCode::Sum, {E.node()}));
  }

  /// Takes ownership of the finished program.
  std::unique_ptr<Program> take() { return std::move(Prog); }

  Expr wrap(Node *N) { return Expr(this, N); }

  /// Tags nodes created inside F with a fresh kernel id (the tensor
  /// frontend's per-kernel annotation for the CHET-style executor).
  template <typename Fn> auto inKernel(Fn &&F) {
    ++CurrentKernel;
    uint64_t Before = Prog->maxNodeId();
    auto Result = F();
    for (Node *N : Prog->nodes())
      if (N->id() >= Before)
        N->setKernelId(CurrentKernel);
    return Result;
  }

private:
  friend class Expr;

  void checkFreshInputName(const std::string &Name) {
    for (const Node *In : Prog->inputs())
      if (In->name() == Name)
        fatalError("duplicate input name '" + Name + "'");
  }

  std::unique_ptr<Program> Prog;
  double DefaultConstScale;
  int32_t CurrentKernel = -1;
};

} // namespace eva

#endif // EVA_FRONTEND_EXPR_H
