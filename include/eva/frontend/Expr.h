//===- eva/frontend/Expr.h - Expression-building frontend -------*- C++ -*-===//
//
// Part of the EVA-CKKS project (PLDI 2020 "EVA" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A C++ embedded DSL playing the role of the paper's PyEVA frontend
/// (Section 7.1): Expr wraps a term-graph node and overloads arithmetic and
/// shift operators, so the Sobel example of Figure 6 transliterates almost
/// line for line:
///
/// \code
///   ProgramBuilder B("sobel", 64 * 64);
///   Expr Image = B.inputCipher("image", 30);
///   Expr Rot = Image << (I * 64 + J);
///   Expr H = Rot * B.constant(F[I][J], 30);
///   B.output("out", H, 30);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef EVA_FRONTEND_EXPR_H
#define EVA_FRONTEND_EXPR_H

#include "eva/ir/Program.h"

#include <memory>
#include <string>
#include <vector>

namespace eva {

class ProgramBuilder;

/// A handle to a value under construction. Copyable; all Exprs share the
/// builder's program.
class Expr {
public:
  Expr() = default;
  Expr(ProgramBuilder *Builder, Node *N) : Builder(Builder), N(N) {}

  Node *node() const { return N; }
  bool valid() const { return N != nullptr; }

  Expr operator+(const Expr &RHS) const;
  Expr operator-(const Expr &RHS) const;
  Expr operator*(const Expr &RHS) const;
  Expr operator-() const;
  /// Rotate left by \p Steps slots (PyEVA's `x << n`).
  Expr operator<<(int32_t Steps) const;
  /// Rotate right by \p Steps slots.
  Expr operator>>(int32_t Steps) const;

  /// x^k by square-and-multiply (PyEVA's `x ** k`), k >= 1.
  Expr pow(unsigned K) const;

private:
  ProgramBuilder *Builder = nullptr;
  Node *N = nullptr;
};

/// Owns a Program and provides the PyEVA-style construction API.
class ProgramBuilder {
public:
  ProgramBuilder(std::string Name, uint64_t VecSize)
      : Prog(std::make_unique<Program>(VecSize, std::move(Name))) {}

  Program &program() { return *Prog; }
  uint64_t vecSize() const { return Prog->vecSize(); }

  /// PyEVA's inputEncrypted(scale).
  Expr inputCipher(std::string Name, double LogScale) {
    return wrap(Prog->makeInput(std::move(Name), ValueType::Cipher, LogScale));
  }
  /// A plaintext (unencrypted) vector input.
  Expr inputPlain(std::string Name, double LogScale) {
    return wrap(Prog->makeInput(std::move(Name), ValueType::Vector, LogScale));
  }
  /// PyEVA's constant(scale, value) for scalars.
  Expr constant(double Value, double LogScale) {
    return wrap(Prog->makeScalarConstant(Value, LogScale));
  }
  /// Vector constant (replicated if shorter than vec_size).
  Expr constantVector(std::vector<double> Values, double LogScale) {
    return wrap(Prog->makeConstant(std::move(Values), LogScale));
  }

  /// PyEVA's output(expr, scale): marks an output with a desired scale.
  void output(std::string Name, const Expr &E, double DesiredLogScale) {
    Node *O = Prog->makeOutput(std::move(Name), E.node());
    O->setLogScale(DesiredLogScale);
  }

  /// Sum of all vec_size slots, replicated into every slot.
  Expr sumSlots(const Expr &E) {
    return wrap(Prog->makeInstruction(OpCode::Sum, {E.node()}));
  }

  /// Takes ownership of the finished program.
  std::unique_ptr<Program> take() { return std::move(Prog); }

  Expr wrap(Node *N) { return Expr(this, N); }

  /// Tags nodes created inside F with a fresh kernel id (the tensor
  /// frontend's per-kernel annotation for the CHET-style executor).
  template <typename Fn> auto inKernel(Fn &&F) {
    ++CurrentKernel;
    uint64_t Before = Prog->maxNodeId();
    auto Result = F();
    for (Node *N : Prog->nodes())
      if (N->id() >= Before)
        N->setKernelId(CurrentKernel);
    return Result;
  }

private:
  friend class Expr;
  std::unique_ptr<Program> Prog;
  int32_t CurrentKernel = -1;
};

} // namespace eva

#endif // EVA_FRONTEND_EXPR_H
