//===- eva/ckks/Plaintext.h - CKKS plaintext --------------------*- C++ -*-===//
//
// Part of the EVA-CKKS project (PLDI 2020 "EVA" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An encoded (but unencrypted) message: an RNS polynomial in NTT form plus
/// the fixed-point scale the encoder applied. The scale is the linear value
/// (the paper's 2^logP), stored as double exactly as SEAL does.
///
//===----------------------------------------------------------------------===//

#ifndef EVA_CKKS_PLAINTEXT_H
#define EVA_CKKS_PLAINTEXT_H

#include "eva/ckks/Poly.h"

namespace eva {

struct Plaintext {
  RnsPoly Poly;
  double Scale = 1.0;

  size_t primeCount() const { return Poly.primeCount(); }
};

} // namespace eva

#endif // EVA_CKKS_PLAINTEXT_H
