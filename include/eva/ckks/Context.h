//===- eva/ckks/Context.h - Validated CKKS parameter context ----*- C++ -*-===//
//
// Part of the EVA-CKKS project (PLDI 2020 "EVA" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Owns the validated encryption parameters and every precomputed table the
/// scheme needs: per-prime NTT tables, per-level CRT composers for decoding,
/// and the inverse-prime constants used by rescaling and key-switch
/// mod-down. The last prime in the chain is the key-switching "special
/// prime" (consumed during encryption in the paper's parameter-selection
/// pass, Section 6.2); the primes before it are the data chain that RESCALE
/// and MODSWITCH consume back-to-front.
///
//===----------------------------------------------------------------------===//

#ifndef EVA_CKKS_CONTEXT_H
#define EVA_CKKS_CONTEXT_H

#include "eva/ckks/SecurityTable.h"
#include "eva/math/CRT.h"
#include "eva/math/Modulus.h"
#include "eva/math/NTT.h"
#include "eva/support/Error.h"

#include <memory>
#include <vector>

namespace eva {

struct EncryptionParameters {
  uint64_t PolyDegree = 0;
  /// All chain primes: data primes in consumption order (the prime consumed
  /// last is at index 0; RESCALE drops the highest live index), followed by
  /// the special prime.
  std::vector<uint64_t> CoeffModulus;
};

class CkksContext {
public:
  /// Validates parameters and builds all tables. Fails (with a diagnostic)
  /// on non-power-of-two degree, duplicate or NTT-unfriendly primes, or a
  /// chain that violates the security table.
  static Expected<std::shared_ptr<CkksContext>>
  create(const EncryptionParameters &Parms,
         SecurityLevel Security = SecurityLevel::TC128);

  /// Convenience: generates primes from bit sizes (last entry = special
  /// prime) and builds the context.
  static Expected<std::shared_ptr<CkksContext>>
  createFromBitSizes(uint64_t PolyDegree, const std::vector<int> &BitSizes,
                     SecurityLevel Security = SecurityLevel::TC128);

  uint64_t polyDegree() const { return Degree; }
  size_t slotCount() const { return Degree / 2; }
  /// Number of data primes (excludes the special prime).
  size_t dataPrimeCount() const { return Primes.size() - 1; }
  size_t totalPrimeCount() const { return Primes.size(); }
  size_t specialPrimeIndex() const { return Primes.size() - 1; }

  const Modulus &prime(size_t I) const { return Primes[I]; }
  const NttTables &ntt(size_t I) const { return *Ntt[I]; }
  SecurityLevel securityLevel() const { return Security; }
  int totalModulusBits() const { return TotalBits; }

  /// CRT composer over the first \p Count data primes (decoding).
  const CrtComposer &composer(size_t Count) const {
    assert(Count >= 1 && Count <= dataPrimeCount() && "bad level");
    return Composers[Count - 1];
  }

  /// q_Divisor^{-1} mod q_Target, Shoup-scaled (rescale & mod-down).
  const ShoupMul &inversePrime(size_t DivisorIdx, size_t TargetIdx) const {
    assert(DivisorIdx < Primes.size() && TargetIdx < DivisorIdx);
    return InvPrime[DivisorIdx][TargetIdx];
  }

private:
  CkksContext() = default;

  uint64_t Degree = 0;
  SecurityLevel Security = SecurityLevel::TC128;
  int TotalBits = 0;
  std::vector<Modulus> Primes;
  std::vector<std::unique_ptr<NttTables>> Ntt;
  std::vector<CrtComposer> Composers; // [count-1] -> first `count` primes
  std::vector<std::vector<ShoupMul>> InvPrime;
};

} // namespace eva

#endif // EVA_CKKS_CONTEXT_H
