//===- eva/ckks/Poly.h - RNS polynomials ------------------------*- C++ -*-===//
//
// Part of the EVA-CKKS project (PLDI 2020 "EVA" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An element of R_Q = Z_Q[X]/(X^N + 1) in residue-number-system (RNS)
/// representation: one length-N component per prime in the current modulus
/// chain. Components are usually kept in NTT (evaluation) form, matching
/// SEAL's CKKS data layout; rescaling and key-switch decomposition
/// temporarily leave NTT form.
///
//===----------------------------------------------------------------------===//

#ifndef EVA_CKKS_POLY_H
#define EVA_CKKS_POLY_H

#include "eva/math/Modulus.h"

#include <cstdint>
#include <span>
#include <vector>

namespace eva {

struct RnsPoly {
  RnsPoly() = default;
  RnsPoly(uint64_t Degree, size_t PrimeCount)
      : Degree(Degree), Comps(PrimeCount, std::vector<uint64_t>(Degree, 0)) {}

  uint64_t Degree = 0;
  /// One residue vector per prime, in chain order (data primes first).
  std::vector<std::vector<uint64_t>> Comps;

  size_t primeCount() const { return Comps.size(); }
  bool empty() const { return Comps.empty(); }

  /// Drops the last component (used by MODSWITCH and after rescaling).
  void dropLastComp() {
    assert(!Comps.empty() && "no component to drop");
    Comps.pop_back();
  }
};

/// Elementwise helpers over one RNS component. All operands must be reduced.
void addPolyComp(std::span<const uint64_t> A, std::span<const uint64_t> B,
                 std::span<uint64_t> Out, const Modulus &Q);
void subPolyComp(std::span<const uint64_t> A, std::span<const uint64_t> B,
                 std::span<uint64_t> Out, const Modulus &Q);
void negatePolyComp(std::span<const uint64_t> A, std::span<uint64_t> Out,
                    const Modulus &Q);
void mulPolyComp(std::span<const uint64_t> A, std::span<const uint64_t> B,
                 std::span<uint64_t> Out, const Modulus &Q);
/// Out += A * B (pointwise, NTT domain).
void mulAccPolyComp(std::span<const uint64_t> A, std::span<const uint64_t> B,
                    std::span<uint64_t> Out, const Modulus &Q);
/// Reduces every element of A (values below some other prime) modulo Q.
void reducePolyComp(std::span<const uint64_t> A, std::span<uint64_t> Out,
                    const Modulus &Q);

} // namespace eva

#endif // EVA_CKKS_POLY_H
