//===- eva/ckks/Ciphertext.h - CKKS ciphertext ------------------*- C++ -*-===//
//
// Part of the EVA-CKKS project (PLDI 2020 "EVA" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A CKKS ciphertext: 2 or more RNS polynomials in NTT form (freshly
/// encrypted ciphertexts have 2; each ciphertext-ciphertext MULTIPLY grows
/// the count until RELINEARIZE shrinks it back — the paper's Constraint 3),
/// the fixed-point scale, and implicitly the level via the component count
/// of its polynomials.
///
//===----------------------------------------------------------------------===//

#ifndef EVA_CKKS_CIPHERTEXT_H
#define EVA_CKKS_CIPHERTEXT_H

#include "eva/ckks/Poly.h"

#include <vector>

namespace eva {

struct Ciphertext {
  std::vector<RnsPoly> Polys;
  double Scale = 1.0;

  size_t size() const { return Polys.size(); }
  size_t primeCount() const {
    return Polys.empty() ? 0 : Polys.front().primeCount();
  }
  uint64_t degree() const { return Polys.empty() ? 0 : Polys.front().Degree; }

  /// Approximate memory footprint in bytes (executor memory accounting).
  size_t memoryBytes() const {
    return size() * primeCount() * degree() * sizeof(uint64_t);
  }
};

} // namespace eva

#endif // EVA_CKKS_CIPHERTEXT_H
