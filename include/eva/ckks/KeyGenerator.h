//===- eva/ckks/KeyGenerator.h - Key generation -----------------*- C++ -*-===//
//
// Part of the EVA-CKKS project (PLDI 2020 "EVA" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates the secret key (ternary), public key, relinearization key
/// (for s^2) and Galois keys for a requested set of rotation steps — the
/// "encryption context" whose generation time Table 7 of the paper reports.
///
//===----------------------------------------------------------------------===//

#ifndef EVA_CKKS_KEYGENERATOR_H
#define EVA_CKKS_KEYGENERATOR_H

#include "eva/ckks/Context.h"
#include "eva/ckks/Keys.h"
#include "eva/support/Random.h"

#include <array>
#include <memory>
#include <optional>
#include <set>

namespace eva {

/// Deterministically expands \p Seed into a uniform polynomial in NTT form
/// over the first \p PrimeCount context primes. Uniformity in NTT form
/// equals uniformity in coefficient form (the NTT is a bijection), so the
/// result can stand in for any freshly sampled uniform polynomial. The
/// expansion uses raw mt19937_64 output with rejection sampling — fully
/// specified by the C++ standard, so client and server reproduce identical
/// polynomials from the same seed regardless of standard library.
RnsPoly expandUniformNtt(const CkksContext &Ctx, size_t PrimeCount,
                         uint64_t Seed);

class KeyGenerator {
public:
  /// \p ReproducibleExpansionSeeds: by default, the expansion seeds
  /// published on the wire by seed compression come from OS entropy (see
  /// deriveSeed()). When true — requires a nonzero \p Seed — they are
  /// instead drawn from a dedicated engine derived from \p Seed, making
  /// every key and ciphertext bit a pure function of the seed. This is the
  /// reproducible mode behind cross-backend bit-identity goldens
  /// (`evac run`, ApiTest); production key generation keeps the default.
  explicit KeyGenerator(std::shared_ptr<const CkksContext> Ctx,
                        uint64_t Seed = 0,
                        bool ReproducibleExpansionSeeds = false);

  const SecretKey &secretKey() const { return Secret; }
  PublicKey createPublicKey();
  RelinKeys createRelinKeys();
  /// One Galois key per distinct left-rotation step in \p Steps. Steps are
  /// normalized modulo the slot count N/2 first (slot rotation is cyclic),
  /// so step 0 and any multiple of the slot count are identities that need
  /// no key; an empty set yields an empty key map.
  GaloisKeys createGaloisKeys(const std::set<uint64_t> &Steps);

  /// Samples a fresh ternary polynomial in NTT form over \p PrimeCount
  /// context primes (exposed for the encryptor's ephemeral u).
  RnsPoly sampleTernaryNtt(size_t PrimeCount);
  /// Samples an error polynomial in NTT form over \p PrimeCount primes.
  RnsPoly sampleErrorNtt(size_t PrimeCount);
  /// Samples a uniform polynomial over \p PrimeCount primes (NTT form).
  RnsPoly sampleUniform(size_t PrimeCount);

  RandomSource &rng() { return Rng; }

  /// Draws a fresh nonzero expansion seed: from OS entropy by default, or
  /// from the dedicated deterministic seed engine in reproducible mode.
  uint64_t deriveSeed();

private:
  /// (c0, c1) with c0 + c1*s = e over the first \p PrimeCount primes. When
  /// \p C1SeedOut is non-null, c1 is expanded from a derived seed (written
  /// through the pointer) so serialization can ship the seed instead.
  std::array<RnsPoly, 2> encryptZeroSymmetric(size_t PrimeCount,
                                              uint64_t *C1SeedOut = nullptr);
  /// Builds a key-switching key for target polynomial \p W (NTT form over
  /// all primes): component i encrypts P * W * (CRT basis_i).
  KSwitchKey createKSwitchKey(const RnsPoly &W);

  std::shared_ptr<const CkksContext> Ctx;
  RandomSource Rng;
  /// Reproducible mode's expansion-seed engine. Deliberately a separate
  /// engine from Rng: published seeds must never expose the stream that
  /// samples secret material (mt19937_64 state is recoverable from its
  /// outputs).
  std::optional<RandomSource> SeedRng;
  SecretKey Secret;
};

} // namespace eva

#endif // EVA_CKKS_KEYGENERATOR_H
