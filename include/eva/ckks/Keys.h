//===- eva/ckks/Keys.h - Secret, public, and evaluation keys ----*- C++ -*-===//
//
// Part of the EVA-CKKS project (PLDI 2020 "EVA" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Key material for the RNS-CKKS scheme. Evaluation keys (relinearization
/// and Galois/rotation keys) use the special-prime key-switching
/// construction of the full-RNS CKKS paper: each decomposition component i
/// encrypts P * w * (CRT basis_i) under the secret key modulo Q*P. The
/// paper's compiler emits exactly the set of rotation steps
/// (DetermineRotationSteps in Algorithm 1) for which Galois keys must be
/// generated, since "evaluating each rotation step count needs a distinct
/// public key" (Section 2.1).
///
//===----------------------------------------------------------------------===//

#ifndef EVA_CKKS_KEYS_H
#define EVA_CKKS_KEYS_H

#include "eva/ckks/Poly.h"

#include <array>
#include <map>

namespace eva {

struct SecretKey {
  RnsPoly S; // NTT form over all primes (data + special)
};

/// Key and ciphertext uniform components are expanded from PRNG seeds so
/// the wire format can ship the 8-byte seed instead of the polynomial
/// (roughly halving key upload size). A seed of 0 means "not seed-derived":
/// the polynomial must be shipped in full.
struct PublicKey {
  RnsPoly P0, P1; // NTT form over all primes
  uint64_t P1Seed = 0; ///< P1 == expandUniformNtt(P1Seed) when nonzero.
};

/// One key-switching key: per decomposition prime i, a pair (k0_i, k1_i)
/// over the full modulus Q*P with k0_i + k1_i * s = e_i + P * w * qtilde_i.
struct KSwitchKey {
  std::vector<std::array<RnsPoly, 2>> Keys;
  /// Parallel to Keys when non-empty: k1_i == expandUniformNtt(C1Seeds[i]).
  std::vector<uint64_t> C1Seeds;
  bool empty() const { return Keys.empty(); }
};

struct RelinKeys {
  KSwitchKey Key; // for w = s^2
  bool empty() const { return Key.empty(); }
};

struct GaloisKeys {
  std::map<uint64_t, KSwitchKey> Keys; // galois element -> key for s(X^g)
  bool has(uint64_t GaloisElt) const { return Keys.count(GaloisElt) != 0; }
  const KSwitchKey &at(uint64_t GaloisElt) const { return Keys.at(GaloisElt); }
};

} // namespace eva

#endif // EVA_CKKS_KEYS_H
