//===- eva/ckks/SecurityTable.h - HE-standard parameter bounds --*- C++ -*-===//
//
// Part of the EVA-CKKS project (PLDI 2020 "EVA" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Upper bounds on the total coefficient-modulus bit count per polynomial
/// degree, following the HomomorphicEncryption.org security standard
/// (Albrecht et al. 2018) at the 128-bit classical level used throughout the
/// paper's evaluation ("All experiments use the default 128-bit security
/// level", Section 8.1). The 65536-degree bound follows the LWE-estimator
/// extrapolation commonly used for that degree.
///
//===----------------------------------------------------------------------===//

#ifndef EVA_CKKS_SECURITYTABLE_H
#define EVA_CKKS_SECURITYTABLE_H

#include <cstdint>

namespace eva {

enum class SecurityLevel {
  None,  ///< No enforcement (tests and microbenchmarks only).
  TC128, ///< 128-bit classical security.
};

/// Maximum total log2(Q*P) for the given polynomial degree, or 0 if the
/// degree is unsupported at this security level.
inline int maxCoeffModulusBits(uint64_t PolyDegree, SecurityLevel Level) {
  if (Level == SecurityLevel::None)
    return 1 << 20;
  switch (PolyDegree) {
  case 1024:
    return 27;
  case 2048:
    return 54;
  case 4096:
    return 109;
  case 8192:
    return 218;
  case 16384:
    return 438;
  case 32768:
    return 881;
  case 65536:
    return 1792;
  default:
    return 0;
  }
}

} // namespace eva

#endif // EVA_CKKS_SECURITYTABLE_H
