//===- eva/ckks/Decryptor.h - Secret-key decryption -------------*- C++ -*-===//
//
// Part of the EVA-CKKS project (PLDI 2020 "EVA" reproduction).
//
//===----------------------------------------------------------------------===//

#ifndef EVA_CKKS_DECRYPTOR_H
#define EVA_CKKS_DECRYPTOR_H

#include "eva/ckks/Ciphertext.h"
#include "eva/ckks/Context.h"
#include "eva/ckks/Keys.h"
#include "eva/ckks/Plaintext.h"

#include <memory>

namespace eva {

/// Decrypts ciphertexts of any polynomial count: m = sum_i c_i * s^i. The
/// result plaintext carries the ciphertext's scale so decoding recovers the
/// approximate message.
class Decryptor {
public:
  Decryptor(std::shared_ptr<const CkksContext> Ctx, SecretKey Sk)
      : Ctx(std::move(Ctx)), Sk(std::move(Sk)) {}

  Plaintext decrypt(const Ciphertext &Ct) const;

private:
  std::shared_ptr<const CkksContext> Ctx;
  SecretKey Sk;
};

} // namespace eva

#endif // EVA_CKKS_DECRYPTOR_H
