//===- eva/ckks/Encryptor.h - Public-key encryption -------------*- C++ -*-===//
//
// Part of the EVA-CKKS project (PLDI 2020 "EVA" reproduction).
//
//===----------------------------------------------------------------------===//

#ifndef EVA_CKKS_ENCRYPTOR_H
#define EVA_CKKS_ENCRYPTOR_H

#include "eva/ckks/Ciphertext.h"
#include "eva/ckks/Context.h"
#include "eva/ckks/KeyGenerator.h"
#include "eva/ckks/Keys.h"
#include "eva/ckks/Plaintext.h"

#include <memory>

namespace eva {

/// Encrypts encoded plaintexts under the public key. Fresh ciphertexts have
/// 2 polynomials and carry the plaintext's scale; they are created over the
/// plaintext's prime count (always the full data chain in compiled EVA
/// programs, since MODSWITCH instructions lower levels explicitly).
class Encryptor {
public:
  Encryptor(std::shared_ptr<const CkksContext> Ctx, PublicKey Pk,
            uint64_t Seed = 0);

  Ciphertext encrypt(const Plaintext &Pt);

private:
  std::shared_ptr<const CkksContext> Ctx;
  PublicKey Pk;
  KeyGenerator Sampler; // reused for ternary/error sampling only
};

} // namespace eva

#endif // EVA_CKKS_ENCRYPTOR_H
