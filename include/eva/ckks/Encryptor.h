//===- eva/ckks/Encryptor.h - Public-key encryption -------------*- C++ -*-===//
//
// Part of the EVA-CKKS project (PLDI 2020 "EVA" reproduction).
//
//===----------------------------------------------------------------------===//

#ifndef EVA_CKKS_ENCRYPTOR_H
#define EVA_CKKS_ENCRYPTOR_H

#include "eva/ckks/Ciphertext.h"
#include "eva/ckks/Context.h"
#include "eva/ckks/KeyGenerator.h"
#include "eva/ckks/Keys.h"
#include "eva/ckks/Plaintext.h"

#include <memory>

namespace eva {

/// Encrypts encoded plaintexts under the public key. Fresh ciphertexts have
/// 2 polynomials and carry the plaintext's scale; they are created over the
/// plaintext's prime count (always the full data chain in compiled EVA
/// programs, since MODSWITCH instructions lower levels explicitly).
///
/// encryptSymmetric produces a ciphertext under the secret key whose c1 is
/// expanded from a PRNG seed, so serialization can ship (c0, seed) instead
/// of (c0, c1) — half the upload for fresh request ciphertexts. Decryption
/// and evaluation treat both forms identically.
class Encryptor {
public:
  /// \p ReproducibleSeeds forwards to the internal sampler's reproducible
  /// expansion-seed mode (see KeyGenerator): symmetric ciphertexts' c1
  /// seeds become a pure function of \p Seed instead of OS entropy.
  Encryptor(std::shared_ptr<const CkksContext> Ctx, PublicKey Pk,
            uint64_t Seed = 0, bool ReproducibleSeeds = false);

  /// Symmetric-only encryptor: no public key needed (clients that hold the
  /// secret key and only upload seed-compressed fresh ciphertexts).
  Encryptor(std::shared_ptr<const CkksContext> Ctx, uint64_t Seed,
            bool ReproducibleSeeds = false);

  Ciphertext encrypt(const Plaintext &Pt);

  /// Secret-key encryption with seed-expanded c1. \p C1SeedOut receives the
  /// seed such that Polys[1] == expandUniformNtt(Ctx, count, seed).
  Ciphertext encryptSymmetric(const Plaintext &Pt, const SecretKey &Sk,
                              uint64_t &C1SeedOut);

private:
  std::shared_ptr<const CkksContext> Ctx;
  PublicKey Pk; // empty polys for symmetric-only encryptors
  KeyGenerator Sampler; // reused for ternary/error sampling only
};

} // namespace eva

#endif // EVA_CKKS_ENCRYPTOR_H
