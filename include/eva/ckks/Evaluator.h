//===- eva/ckks/Evaluator.h - Homomorphic evaluation ------------*- C++ -*-===//
//
// Part of the EVA-CKKS project (PLDI 2020 "EVA" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Homomorphic operations of the RNS-CKKS scheme, one per EVA instruction
/// opcode (Table 2 of the paper): NEGATE, ADD, SUB, MULTIPLY (ciphertext and
/// plaintext variants), ROTATELEFT/ROTATERIGHT (via Galois automorphism plus
/// key switching), RELINEARIZE, MODSWITCH, and RESCALE. Operand restrictions
/// (equal coefficient moduli for binary ops, equal scales for additive ops,
/// two-polynomial inputs to MULTIPLY) are asserted here; the EVA compiler
/// guarantees they hold for compiled programs, which is the paper's central
/// "no runtime exceptions" claim.
///
/// An Evaluator may optionally be given a ThreadPool, in which case the hot
/// paths (MULTIPLY, the key-switch core of RELINEARIZE and ROTATE, and the
/// rescaling mod-down) parallelize over independent RNS limbs — each prime
/// component's NTTs and pointwise arithmetic run as a separate loop chunk.
/// All limb work is exact modular integer arithmetic on disjoint
/// components, so results are bit-identical to the serial evaluator. This
/// intra-op parallelism composes with the executor's node-level DAG
/// scheduling: when the DAG is too narrow to occupy every worker, idle
/// workers pick up limb chunks of the ops in flight (Section 6.1's "as much
/// parallelism as the schedule exposes").
///
//===----------------------------------------------------------------------===//

#ifndef EVA_CKKS_EVALUATOR_H
#define EVA_CKKS_EVALUATOR_H

#include "eva/ckks/Ciphertext.h"
#include "eva/ckks/Context.h"
#include "eva/ckks/Keys.h"
#include "eva/ckks/Plaintext.h"

#include <array>
#include <atomic>
#include <functional>
#include <memory>
#include <vector>

namespace eva {

class ThreadPool;

/// Snapshot of the evaluator's operation counters. Key-switch
/// decompositions are the dominant rotation cost (one inverse NTT per limb
/// plus the full RNS re-extension of every digit); the hoisted rotation
/// path shares one decomposition across a whole batch of rotations of the
/// same ciphertext, which these counters make observable to benches and
/// tests (via ExecutionStats).
struct EvaluatorCounters {
  uint64_t KeySwitchDecompositions = 0; ///< relinearize + every rotation path
  uint64_t Rotations = 0;               ///< rotations evaluated (serial + hoisted)
  uint64_t HoistedRotations = 0;        ///< rotations served from a shared decomposition
  uint64_t HoistBatches = 0;            ///< rotateHoisted batches executed
  // Per-op invocation counts (one per EVA instruction opcode the evaluator
  // executed); together with the EVA_PROFILE NTT/mulmod totals these locate
  // the next hot spot by measurement instead of inference.
  uint64_t Adds = 0;             ///< add + addPlain
  uint64_t Subs = 0;             ///< sub + subPlain + subFromPlain
  uint64_t Negates = 0;          ///< negate (standalone, not inside sub)
  uint64_t Multiplies = 0;       ///< ciphertext-ciphertext multiplies
  uint64_t PlainMultiplies = 0;  ///< ciphertext-plaintext multiplies
  uint64_t Relinearizations = 0; ///< relinearize calls that key-switched
  uint64_t Rescales = 0;         ///< rescale invocations
  uint64_t ModSwitches = 0;      ///< modSwitch invocations
};

class Evaluator {
public:
  /// \p Pool, when non-null, enables limb-level parallelism inside single
  /// operations (not owned; must outlive the evaluator). A null pool or a
  /// pool of size 1 runs every limb inline.
  explicit Evaluator(std::shared_ptr<const CkksContext> Ctx,
                     ThreadPool *Pool = nullptr)
      : Ctx(std::move(Ctx)), Pool(Pool) {}

  Ciphertext negate(const Ciphertext &A) const;
  Ciphertext add(const Ciphertext &A, const Ciphertext &B) const;
  Ciphertext sub(const Ciphertext &A, const Ciphertext &B) const;
  Ciphertext addPlain(const Ciphertext &A, const Plaintext &B) const;
  Ciphertext subPlain(const Ciphertext &A, const Plaintext &B) const;
  /// B - A (the EVA SUB instruction with a plaintext left operand).
  Ciphertext subFromPlain(const Plaintext &B, const Ciphertext &A) const;

  /// Ciphertext-ciphertext multiply; result has size(A)+size(B)-1
  /// polynomials and the product scale.
  Ciphertext multiply(const Ciphertext &A, const Ciphertext &B) const;
  Ciphertext multiplyPlain(const Ciphertext &A, const Plaintext &B) const;

  /// Reduces a 3-polynomial ciphertext back to 2 (Constraint 3).
  Ciphertext relinearize(const Ciphertext &A, const RelinKeys &Keys) const;

  /// Divides by (and drops) the last prime of the chain, rounding; the
  /// scale divides by the actual prime value (the paper's footnote 1).
  Ciphertext rescale(const Ciphertext &A) const;

  /// Drops the last prime without changing the scale.
  Ciphertext modSwitch(const Ciphertext &A) const;

  /// Rotates all N/2 slots left by \p Steps (in [1, N/2)). Requires the
  /// Galois key for 5^Steps.
  Ciphertext rotateLeft(const Ciphertext &A, uint64_t Steps,
                        const GaloisKeys &Keys) const;

  /// Hoisted rotation (Halevi–Shoup): performs the key-switch decomposition
  /// of \p A's c1 component ONCE — the per-limb inverse NTTs that dominate
  /// each rotation's fixed cost — and applies every Galois automorphism in
  /// \p Steps against the shared coefficient-domain digits. Because the
  /// automorphism is applied to exactly the digits the serial path would
  /// recover (an NTT round trip is exact), each output is bit-identical to
  /// rotateLeft(A, Steps[K], Keys). A zero step returns a copy of \p A;
  /// duplicate steps each get their own output. Limb work runs on the
  /// evaluator's ThreadPool when one is attached.
  std::vector<Ciphertext> rotateHoisted(const Ciphertext &A,
                                        const std::vector<uint64_t> &Steps,
                                        const GaloisKeys &Keys) const;

  /// Zeroes the operation counters (executors call this at run start).
  void resetCounters() const;
  /// Snapshot of the operation counters since the last reset.
  EvaluatorCounters counters() const;

private:
  /// Coefficient-domain key-switch decomposition digits: digit I is the
  /// inverse NTT of Target's component I (a representative of Target mod
  /// q_I). Counted as one decomposition.
  std::vector<std::vector<uint64_t>>
  keySwitchDecompose(const RnsPoly &Target) const;

  /// The inner-product half of key switching: extends each digit to every
  /// output prime (+ the special prime), accumulates against \p Key, and
  /// divides the special prime back out.
  std::array<RnsPoly, 2>
  keySwitchAccumulate(const std::vector<std::vector<uint64_t>> &Digits,
                      const KSwitchKey &Key) const;

  /// Assembles the rotated ciphertext from the automorphed c0 and the
  /// key-switched (c0', c1') contribution — shared by the serial and the
  /// hoisted rotation paths so they stay bit-identical by construction.
  Ciphertext assembleRotation(RnsPoly C0, std::array<RnsPoly, 2> Ks,
                              double Scale) const;

  Ciphertext addSub(const Ciphertext &A, const Ciphertext &B,
                    bool Subtract) const;
  void checkBinaryOperands(const Ciphertext &A, const Ciphertext &B) const;
  void checkScaleMatch(double SA, double SB) const;

  /// Key-switches \p Target (NTT form over `count` data primes) to the
  /// secret key, returning the (c0, c1) contribution over the same primes.
  std::array<RnsPoly, 2> keySwitch(const RnsPoly &Target,
                                   const KSwitchKey &Key) const;

  /// Rounded division of NTT-form components by the prime at PrimeIdx.back()
  /// (dropped on return). PrimeIdx maps each component to its context prime.
  void divideRoundDropLast(std::vector<std::vector<uint64_t>> &Comps,
                           const std::vector<size_t> &PrimeIdx) const;

  /// Runs Fn(I) for I in [0, Count) — across the pool when limb parallelism
  /// is enabled, inline otherwise. Fn instances must touch disjoint limbs.
  void forEachLimb(size_t Count, const std::function<void(size_t)> &Fn) const;

  std::shared_ptr<const CkksContext> Ctx;
  ThreadPool *Pool = nullptr;

  /// Operation counters. Mutable atomics: computeNode dispatches through a
  /// const Evaluator from many threads at once, and the counts are
  /// observability, not semantics.
  mutable std::atomic<uint64_t> NumDecompositions{0};
  mutable std::atomic<uint64_t> NumRotations{0};
  mutable std::atomic<uint64_t> NumHoistedRotations{0};
  mutable std::atomic<uint64_t> NumHoistBatches{0};
  mutable std::atomic<uint64_t> NumAdds{0};
  mutable std::atomic<uint64_t> NumSubs{0};
  mutable std::atomic<uint64_t> NumNegates{0};
  mutable std::atomic<uint64_t> NumMultiplies{0};
  mutable std::atomic<uint64_t> NumPlainMultiplies{0};
  mutable std::atomic<uint64_t> NumRelinearizations{0};
  mutable std::atomic<uint64_t> NumRescales{0};
  mutable std::atomic<uint64_t> NumModSwitches{0};
};

} // namespace eva

#endif // EVA_CKKS_EVALUATOR_H
