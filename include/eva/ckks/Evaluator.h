//===- eva/ckks/Evaluator.h - Homomorphic evaluation ------------*- C++ -*-===//
//
// Part of the EVA-CKKS project (PLDI 2020 "EVA" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Homomorphic operations of the RNS-CKKS scheme, one per EVA instruction
/// opcode (Table 2 of the paper): NEGATE, ADD, SUB, MULTIPLY (ciphertext and
/// plaintext variants), ROTATELEFT/ROTATERIGHT (via Galois automorphism plus
/// key switching), RELINEARIZE, MODSWITCH, and RESCALE. Operand restrictions
/// (equal coefficient moduli for binary ops, equal scales for additive ops,
/// two-polynomial inputs to MULTIPLY) are asserted here; the EVA compiler
/// guarantees they hold for compiled programs, which is the paper's central
/// "no runtime exceptions" claim.
///
//===----------------------------------------------------------------------===//

#ifndef EVA_CKKS_EVALUATOR_H
#define EVA_CKKS_EVALUATOR_H

#include "eva/ckks/Ciphertext.h"
#include "eva/ckks/Context.h"
#include "eva/ckks/Keys.h"
#include "eva/ckks/Plaintext.h"

#include <array>
#include <memory>

namespace eva {

class Evaluator {
public:
  explicit Evaluator(std::shared_ptr<const CkksContext> Ctx)
      : Ctx(std::move(Ctx)) {}

  Ciphertext negate(const Ciphertext &A) const;
  Ciphertext add(const Ciphertext &A, const Ciphertext &B) const;
  Ciphertext sub(const Ciphertext &A, const Ciphertext &B) const;
  Ciphertext addPlain(const Ciphertext &A, const Plaintext &B) const;
  Ciphertext subPlain(const Ciphertext &A, const Plaintext &B) const;
  /// B - A (the EVA SUB instruction with a plaintext left operand).
  Ciphertext subFromPlain(const Plaintext &B, const Ciphertext &A) const;

  /// Ciphertext-ciphertext multiply; result has size(A)+size(B)-1
  /// polynomials and the product scale.
  Ciphertext multiply(const Ciphertext &A, const Ciphertext &B) const;
  Ciphertext multiplyPlain(const Ciphertext &A, const Plaintext &B) const;

  /// Reduces a 3-polynomial ciphertext back to 2 (Constraint 3).
  Ciphertext relinearize(const Ciphertext &A, const RelinKeys &Keys) const;

  /// Divides by (and drops) the last prime of the chain, rounding; the
  /// scale divides by the actual prime value (the paper's footnote 1).
  Ciphertext rescale(const Ciphertext &A) const;

  /// Drops the last prime without changing the scale.
  Ciphertext modSwitch(const Ciphertext &A) const;

  /// Rotates all N/2 slots left by \p Steps (in [1, N/2)). Requires the
  /// Galois key for 5^Steps.
  Ciphertext rotateLeft(const Ciphertext &A, uint64_t Steps,
                        const GaloisKeys &Keys) const;

private:
  Ciphertext addSub(const Ciphertext &A, const Ciphertext &B,
                    bool Subtract) const;
  void checkBinaryOperands(const Ciphertext &A, const Ciphertext &B) const;
  void checkScaleMatch(double SA, double SB) const;

  /// Key-switches \p Target (NTT form over `count` data primes) to the
  /// secret key, returning the (c0, c1) contribution over the same primes.
  std::array<RnsPoly, 2> keySwitch(const RnsPoly &Target,
                                   const KSwitchKey &Key) const;

  /// Rounded division of NTT-form components by the prime at PrimeIdx.back()
  /// (dropped on return). PrimeIdx maps each component to its context prime.
  void divideRoundDropLast(std::vector<std::vector<uint64_t>> &Comps,
                           const std::vector<size_t> &PrimeIdx) const;

  std::shared_ptr<const CkksContext> Ctx;
};

} // namespace eva

#endif // EVA_CKKS_EVALUATOR_H
