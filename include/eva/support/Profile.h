//===- eva/support/Profile.h - EVA_PROFILE hot-path counters ----*- C++ -*-===//
//
// Part of the EVA-CKKS project (PLDI 2020 "EVA" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Process-global counters for the modular-arithmetic hot path: NTT
/// invocations, modular multiplies, and limb-arena traffic. They answer
/// "where did the time go" with measured counts instead of guesses — the
/// next optimization target should be read off these numbers, not inferred
/// from BENCH deltas alone.
///
/// The counters only exist when the library is built with the EVA_PROFILE
/// CMake option (a PUBLIC compile definition): the EVA_PROF_ADD macro
/// compiles to nothing otherwise, so release hot loops carry zero
/// instrumentation cost. Counts are process-global relaxed atomics, not
/// per-evaluator — the NTT tables and the arena have no evaluator to hang
/// state off — so concurrent runs fold into one total. Executors snapshot
/// before/after a run to report per-run deltas in ExecutionStats.
///
//===----------------------------------------------------------------------===//

#ifndef EVA_SUPPORT_PROFILE_H
#define EVA_SUPPORT_PROFILE_H

#include <atomic>
#include <cstdint>

namespace eva {

/// A snapshot of the profile counters (all zero unless built with
/// EVA_PROFILE).
struct ProfileCounters {
  uint64_t Ntts = 0;        ///< forward + inverse NTT invocations
  uint64_t MulMods = 0;     ///< modular multiplies in the hot kernels
  uint64_t ArenaAcquires = 0;  ///< limb-scratch acquisitions served
  uint64_t ArenaHeapBytes = 0; ///< bytes the arena had to heap-allocate
};

/// True when the library was compiled with EVA_PROFILE.
bool profileEnabled();

/// Current totals since process start or the last profileReset().
ProfileCounters profileSnapshot();

/// Zeroes all counters.
void profileReset();

/// Per-field difference After - Before (wrap-free: counters only grow).
inline ProfileCounters profileDelta(const ProfileCounters &Before,
                                    const ProfileCounters &After) {
  ProfileCounters D;
  D.Ntts = After.Ntts - Before.Ntts;
  D.MulMods = After.MulMods - Before.MulMods;
  D.ArenaAcquires = After.ArenaAcquires - Before.ArenaAcquires;
  D.ArenaHeapBytes = After.ArenaHeapBytes - Before.ArenaHeapBytes;
  return D;
}

#if defined(EVA_PROFILE)

namespace detail {

struct ProfileState {
  std::atomic<uint64_t> Ntts{0};
  std::atomic<uint64_t> MulMods{0};
  std::atomic<uint64_t> ArenaAcquires{0};
  std::atomic<uint64_t> ArenaHeapBytes{0};
};

ProfileState &profileState();

} // namespace detail

/// Adds \p Amount to counter \p Field. Batch at call sites (one add per
/// kernel call, not per element) — relaxed atomics are cheap, not free.
#define EVA_PROF_ADD(Field, Amount)                                           \
  ::eva::detail::profileState().Field.fetch_add(                              \
      static_cast<uint64_t>(Amount), std::memory_order_relaxed)

#else

#define EVA_PROF_ADD(Field, Amount)                                           \
  do {                                                                        \
  } while (false)

#endif // EVA_PROFILE

} // namespace eva

#endif // EVA_SUPPORT_PROFILE_H
