//===- eva/support/Common.h - Basic macros and fatal errors ----*- C++ -*-===//
//
// Part of the EVA-CKKS project. Reproduction of "EVA: An Encrypted Vector
// Arithmetic Language and Compiler for Efficient Homomorphic Computation"
// (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Project-wide assertion and fatal-error helpers. Library code never throws
/// exceptions; programmer errors are assertions, user-facing errors flow
/// through eva::Expected (see Error.h), and impossible states call
/// eva::fatalError.
///
//===----------------------------------------------------------------------===//

#ifndef EVA_SUPPORT_COMMON_H
#define EVA_SUPPORT_COMMON_H

#include <cassert>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace eva {

/// Prints \p Message to stderr and aborts. Used for unrecoverable internal
/// states (the moral equivalent of llvm::report_fatal_error).
[[noreturn]] inline void fatalError(const std::string &Message) {
  std::fprintf(stderr, "eva fatal error: %s\n", Message.c_str());
  std::abort();
}

/// Marks a point in code that must be unreachable.
[[noreturn]] inline void unreachableImpl(const char *Message, const char *File,
                                         int Line) {
  std::fprintf(stderr, "eva unreachable at %s:%d: %s\n", File, Line, Message);
  std::abort();
}

} // namespace eva

#define EVA_UNREACHABLE(MSG) ::eva::unreachableImpl(MSG, __FILE__, __LINE__)

#endif // EVA_SUPPORT_COMMON_H
