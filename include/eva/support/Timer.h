//===- eva/support/Timer.h - Wall-clock timing ------------------*- C++ -*-===//
//
// Part of the EVA-CKKS project (PLDI 2020 "EVA" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wall-clock timer used by the benchmark harnesses that regenerate the
/// paper's tables (compile / context / encrypt / decrypt / latency timings).
///
//===----------------------------------------------------------------------===//

#ifndef EVA_SUPPORT_TIMER_H
#define EVA_SUPPORT_TIMER_H

#include <chrono>

namespace eva {

class Timer {
public:
  Timer() { reset(); }
  void reset() { Start = Clock::now(); }
  /// Seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }
  double milliseconds() const { return seconds() * 1e3; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace eva

#endif // EVA_SUPPORT_TIMER_H
