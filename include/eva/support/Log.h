//===- eva/support/Log.h - Leveled structured logging -----------*- C++ -*-===//
//
// Part of the EVA-CKKS project (PLDI 2020 "EVA" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small leveled logger for the long-running service processes. Every
/// record is one structured line of key=value pairs,
///
///   level=info ts=1719221133042 event=request req=42 program=svc_bench
///   exec_us=21043 status=ok
///
/// so a running `evaserve` can be grepped and post-processed without a
/// parser. Design constraints, in order:
///
///  * Cheap when disabled: the level check is one relaxed atomic load and
///    a suppressed LogLine never formats anything.
///  * Thread-safe: lines from concurrent connections/workers never
///    interleave (one write under a mutex per emitted line).
///  * Rate-limitable: hot failure paths (accept-loop errors, scheduler
///    rejections under overload) call ratelimit() so a flood collapses to
///    one line per interval instead of amplifying the overload.
///
/// This replaces the scattered fprintf(stderr)/std::cerr diagnostics in
/// evaserve, ServiceServer, and the scheduler rejection paths.
///
//===----------------------------------------------------------------------===//

#ifndef EVA_SUPPORT_LOG_H
#define EVA_SUPPORT_LOG_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace eva {

enum class LogLevel : int {
  Debug = 0,
  Info = 1,
  Warn = 2,
  Error = 3,
  Off = 4, ///< suppresses everything (still a valid --log-level value)
};

/// The global threshold: records below it are suppressed. Default Warn, so
/// library code stays quiet unless a daemon opts into more.
LogLevel logLevel();
void setLogLevel(LogLevel Level);
inline bool logEnabled(LogLevel Level) { return Level >= logLevel(); }

const char *logLevelName(LogLevel Level);
/// Parses "debug" / "info" / "warn" / "error" / "off"; false on anything
/// else ("--log-level banana" must be a usage error, not a silent default).
bool parseLogLevel(std::string_view Text, LogLevel &Out);

/// Redirects emission (default stderr). The sink must outlive all logging;
/// tests point it at a tmpfile to assert on emitted lines.
void setLogSink(std::FILE *Sink);

/// One structured log line, emitted on destruction:
///
///   LogLine(LogLevel::Info, "session_open").kv("session", Id)
///       .kv("program", Name);
///
/// A suppressed line (below the level threshold, or rate-limited) skips all
/// formatting: kv() on it is a no-op.
class LogLine {
public:
  LogLine(LogLevel Level, std::string_view Event);
  ~LogLine();

  LogLine(const LogLine &) = delete;
  LogLine &operator=(const LogLine &) = delete;

  LogLine &kv(std::string_view Key, std::string_view Value);
  LogLine &kv(std::string_view Key, const char *Value) {
    return kv(Key, std::string_view(Value));
  }
  LogLine &kv(std::string_view Key, const std::string &Value) {
    return kv(Key, std::string_view(Value));
  }
  LogLine &kv(std::string_view Key, uint64_t Value);
  LogLine &kv(std::string_view Key, int64_t Value);
  LogLine &kv(std::string_view Key, int Value) {
    return kv(Key, static_cast<int64_t>(Value));
  }
  LogLine &kv(std::string_view Key, double Value);
  /// Seconds rendered as integer microseconds (`key_us=NNN`) — span
  /// timings stay grep- and sort-friendly.
  LogLine &kvUs(std::string_view Key, double Seconds);

  /// Collapses this event to at most one emitted line per
  /// \p MinIntervalSeconds (keyed by the event name). Call first, before
  /// any kv(), so suppressed lines pay nothing for formatting.
  LogLine &ratelimit(double MinIntervalSeconds);

private:
  bool Enabled;
  std::string Buffer;
};

} // namespace eva

#endif // EVA_SUPPORT_LOG_H
