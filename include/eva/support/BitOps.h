//===- eva/support/BitOps.h - Bit manipulation helpers ----------*- C++ -*-===//
//
// Part of the EVA-CKKS project (PLDI 2020 "EVA" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Power-of-two and bit-reversal utilities shared by the NTT, the encoder's
/// special FFT and the EVA language's vector-size checks.
///
//===----------------------------------------------------------------------===//

#ifndef EVA_SUPPORT_BITOPS_H
#define EVA_SUPPORT_BITOPS_H

#include <cassert>
#include <cstdint>

namespace eva {

inline bool isPowerOfTwo(uint64_t X) { return X != 0 && (X & (X - 1)) == 0; }

/// Exact log2 of a power of two.
inline unsigned log2Exact(uint64_t X) {
  assert(isPowerOfTwo(X) && "log2Exact requires a power of two");
  unsigned R = 0;
  while (X > 1) {
    X >>= 1;
    ++R;
  }
  return R;
}

/// Number of significant bits (bit length) of \p X; 0 for X == 0.
inline unsigned bitLength(uint64_t X) {
  unsigned R = 0;
  while (X != 0) {
    X >>= 1;
    ++R;
  }
  return R;
}

/// Reverses the low \p BitCount bits of \p X.
inline uint64_t reverseBits(uint64_t X, unsigned BitCount) {
  assert(BitCount <= 64 && "bit count out of range");
  uint64_t R = 0;
  for (unsigned I = 0; I < BitCount; ++I) {
    R = (R << 1) | (X & 1);
    X >>= 1;
  }
  return R;
}

} // namespace eva

#endif // EVA_SUPPORT_BITOPS_H
