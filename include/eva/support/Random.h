//===- eva/support/Random.h - Randomness for keys and noise -----*- C++ -*-===//
//
// Part of the EVA-CKKS project (PLDI 2020 "EVA" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Random source used for key generation, encryption randomness, and test
/// workload generation. A reproduction substitutes a seeded Mersenne Twister
/// for SEAL's hardware-backed PRNG; the distributions (uniform mod q,
/// ternary, rounded Gaussian sigma = 3.2) match the scheme's requirements.
///
//===----------------------------------------------------------------------===//

#ifndef EVA_SUPPORT_RANDOM_H
#define EVA_SUPPORT_RANDOM_H

#include <cmath>
#include <cstdint>
#include <random>

namespace eva {

/// Standard deviation of the RLWE error distribution (HE-standard value).
inline constexpr double ErrorStandardDeviation = 3.2;

class RandomSource {
public:
  explicit RandomSource(uint64_t Seed = std::random_device{}())
      : Engine(Seed) {}

  /// Uniform value in [0, Bound).
  uint64_t uniformBelow(uint64_t Bound) {
    return std::uniform_int_distribution<uint64_t>(0, Bound - 1)(Engine);
  }

  uint64_t uniform64() { return Engine(); }

  /// Uniform value in {-1, 0, 1}, returned as 0, 1, or Modulus-1 encoding is
  /// the caller's job; here we return the signed value.
  int ternary() {
    return static_cast<int>(uniformBelow(3)) - 1;
  }

  /// Rounded Gaussian with standard deviation ErrorStandardDeviation.
  int64_t gaussian() {
    std::normal_distribution<double> D(0.0, ErrorStandardDeviation);
    double V = D(Engine);
    // Clamp to 6 sigma as the HE standard's distribution does.
    double Limit = 6.0 * ErrorStandardDeviation;
    if (V > Limit)
      V = Limit;
    if (V < -Limit)
      V = -Limit;
    return static_cast<int64_t>(std::llround(V));
  }

  double uniformReal(double Lo, double Hi) {
    return std::uniform_real_distribution<double>(Lo, Hi)(Engine);
  }

  std::mt19937_64 &engine() { return Engine; }

private:
  std::mt19937_64 Engine;
};

} // namespace eva

#endif // EVA_SUPPORT_RANDOM_H
