//===- eva/support/Arena.h - Free-list arena for limb scratch ---*- C++ -*-===//
//
// Part of the EVA-CKKS project (PLDI 2020 "EVA" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-local free-list arena for the RNS limb scratch buffers the
/// evaluator hot paths churn through (one N-word buffer per limb per
/// key-switch digit, Galois automorphism, multiply, ...). PR 2 introduced
/// ad-hoc `thread_local std::vector` scratch at two call sites; this grows
/// it into one subsystem: every hot path acquires a recycled buffer and the
/// arena keeps a bounded per-size cache, so steady-state evaluation performs
/// zero heap allocations for limb scratch.
///
/// Buffers are bucketed by power-of-two capacity and handed out through the
/// RAII LimbScratch handle, which returns its buffer to the arena of the
/// destroying thread (buffers may migrate between pool threads; each
/// bucket's cache is bounded, so migration cannot grow memory without
/// bound). Contents of an acquired buffer are unspecified — callers either
/// overwrite fully or use the zeroed variant.
///
//===----------------------------------------------------------------------===//

#ifndef EVA_SUPPORT_ARENA_H
#define EVA_SUPPORT_ARENA_H

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace eva {

class LimbScratch;

/// Acquires a \p Words-element uint64_t scratch buffer; contents are
/// unspecified (typically a recycled buffer's previous contents).
LimbScratch acquireLimbScratch(size_t Words);

/// Acquires a zero-filled \p Words-element scratch buffer.
LimbScratch acquireLimbScratchZeroed(size_t Words);

/// RAII handle to an arena buffer. Move-only; the destructor recycles the
/// buffer into the destroying thread's free list.
class LimbScratch {
public:
  LimbScratch() = default;
  LimbScratch(LimbScratch &&O) noexcept
      : Buf(std::move(O.Buf)), Words(O.Words) {
    O.Words = 0;
  }
  LimbScratch &operator=(LimbScratch &&O) noexcept {
    if (this != &O) {
      release();
      Buf = std::move(O.Buf);
      Words = O.Words;
      O.Words = 0;
    }
    return *this;
  }
  LimbScratch(const LimbScratch &) = delete;
  LimbScratch &operator=(const LimbScratch &) = delete;
  ~LimbScratch() { release(); }

  uint64_t *data() { return Buf.data(); }
  const uint64_t *data() const { return Buf.data(); }
  /// Number of usable words (the acquired size, not the bucket capacity).
  size_t size() const { return Words; }
  bool empty() const { return Words == 0; }
  uint64_t &operator[](size_t I) { return Buf[I]; }
  uint64_t operator[](size_t I) const { return Buf[I]; }
  std::span<uint64_t> span() { return {Buf.data(), Words}; }
  std::span<const uint64_t> span() const { return {Buf.data(), Words}; }

private:
  friend LimbScratch acquireLimbScratch(size_t);
  LimbScratch(std::vector<uint64_t> Buffer, size_t UsableWords)
      : Buf(std::move(Buffer)), Words(UsableWords) {}
  void release();

  // Kept at full bucket capacity; the handle exposes only the first Words.
  std::vector<uint64_t> Buf;
  size_t Words = 0;
};

/// Always-on (not EVA_PROFILE-gated) statistics of the calling thread's
/// arena — cheap per-thread counters the reuse tests assert against.
struct LimbArenaStats {
  uint64_t Acquires = 0;      ///< buffers handed out
  uint64_t Hits = 0;          ///< acquisitions served from the free list
  uint64_t HeapAllocations = 0; ///< acquisitions that hit the heap
  uint64_t HeapBytes = 0;       ///< total bytes heap-allocated
  uint64_t CachedBuffers = 0;   ///< buffers currently in the free lists
  uint64_t CachedBytes = 0;     ///< bytes currently cached
};

/// Snapshot of the calling thread's arena statistics.
LimbArenaStats limbArenaStats();

/// Drops every cached buffer of the calling thread (tests and
/// memory-pressure paths; not needed in normal operation).
void limbArenaReleaseCached();

} // namespace eva

#endif // EVA_SUPPORT_ARENA_H
