//===- eva/support/ThreadPool.h - Worker pool for the executor --*- C++ -*-===//
//
// Part of the EVA-CKKS project (PLDI 2020 "EVA" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size worker pool. The paper's executor uses the Galois parallel
/// library to schedule the instruction DAG asynchronously; this pool plus the
/// dependency-counting scheduler in eva/runtime/ParallelExecutor.h plays that
/// role. parallelFor provides the bulk-synchronous (OpenMP-like) schedule the
/// CHET baseline executor uses within each kernel.
///
//===----------------------------------------------------------------------===//

#ifndef EVA_SUPPORT_THREADPOOL_H
#define EVA_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace eva {

class ThreadPool {
public:
  /// Creates a pool with \p NumThreads workers (0 means hardware
  /// concurrency). A pool of one worker still runs tasks on that worker so
  /// scheduling behaviour is uniform.
  explicit ThreadPool(size_t NumThreads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  size_t size() const { return Workers.size(); }

  /// Enqueues \p Task for asynchronous execution.
  void submit(std::function<void()> Task);

  /// Blocks until every submitted task has finished.
  void waitIdle();

  /// Runs Body(I) for I in [0, Count) across the pool and waits for all
  /// iterations (a barrier), mimicking an OpenMP parallel-for.
  void parallelFor(size_t Count, const std::function<void(size_t)> &Body);

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::queue<std::function<void()>> Tasks;
  std::mutex Mutex;
  std::condition_variable TaskAvailable;
  std::condition_variable Idle;
  size_t ActiveTasks = 0;
  bool Stopping = false;
};

} // namespace eva

#endif // EVA_SUPPORT_THREADPOOL_H
