//===- eva/support/ThreadPool.h - Cooperative worker pool -------*- C++ -*-===//
//
// Part of the EVA-CKKS project (PLDI 2020 "EVA" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size cooperative worker pool. The paper's executor uses the
/// Galois parallel library to schedule the instruction DAG asynchronously;
/// this pool plus the dependency-counting scheduler in
/// eva/runtime/CkksExecutor.cpp plays that role. parallelFor /
/// parallelForChunks provide the bulk-synchronous (OpenMP-like) schedule the
/// CHET baseline executor uses within each kernel, and the limb-level
/// parallelism the Evaluator uses inside a single CKKS operation.
///
/// Threading model: a pool of size N owns N-1 background workers; the Nth
/// execution context is whichever thread calls parallelFor, helpUntil, or
/// waitIdle — the caller *participates* in the work instead of blocking on a
/// condition variable. This makes nested data parallelism safe: a worker
/// that reaches a parallelFor inside a task executes loop chunks itself, so
/// the loop makes progress even when every other worker is busy (or when
/// there are no other workers at all). The old design, where the caller
/// enqueued tasks and slept, serialized nested loops and deadlocked once all
/// workers were blocked inside one.
///
//===----------------------------------------------------------------------===//

#ifndef EVA_SUPPORT_THREADPOOL_H
#define EVA_SUPPORT_THREADPOOL_H

#include "eva/support/ThreadAnnotations.h"

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <queue>
#include <thread>
#include <vector>

namespace eva {

class ThreadPool {
public:
  /// Creates a pool whose total parallelism is \p NumThreads: NumThreads - 1
  /// background workers plus the cooperating caller (0 means hardware
  /// concurrency). ThreadPool(1) therefore spawns no threads and runs
  /// everything inline on the caller, which keeps thread-count accounting
  /// honest in the scaling benchmarks.
  explicit ThreadPool(size_t NumThreads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Total parallelism: background workers + the cooperating caller.
  size_t size() const { return Workers.size() + 1; }

  /// Enqueues \p Task for asynchronous execution. With a pool of size 1 the
  /// task stays queued until the caller drains it via waitIdle or helpUntil.
  void submit(std::function<void()> Task) EVA_EXCLUDES(PoolMutex);

  /// Cooperatively drains the pool: the caller runs queued tasks (so a pool
  /// of size 1 still makes progress) and returns once the queue is empty and
  /// no task is in flight.
  void waitIdle() EVA_EXCLUDES(PoolMutex);

  /// Runs queued tasks on the calling thread until \p Done() returns true,
  /// sleeping when the queue is empty. A thread that flips the condition
  /// from another thread must call poke() afterwards.
  void helpUntil(const std::function<bool()> &Done) EVA_EXCLUDES(PoolMutex);

  /// Wakes threads sleeping in helpUntil so they re-check their condition.
  void poke() EVA_EXCLUDES(PoolMutex);

  /// Runs Body(I) for I in [0, Count) across the pool and waits for all
  /// iterations (a barrier), mimicking an OpenMP parallel-for. The caller
  /// executes chunks itself; safe to call from inside a worker task.
  void parallelFor(size_t Count, const std::function<void(size_t)> &Body);

  /// Chunked variant for fine-grained loops: Body(Begin, End) is invoked on
  /// disjoint ranges covering [0, Count), each at least \p Grain iterations
  /// (except possibly the last), so per-element dispatch overhead is paid
  /// once per chunk instead of once per index.
  void parallelForChunks(size_t Count, size_t Grain,
                         const std::function<void(size_t, size_t)> &Body);

private:
  /// Shared state of one parallel loop. Heap-allocated so helper tasks that
  /// run after the loop completed (the caller has already returned) find an
  /// exhausted iteration space and exit without touching the dead Body.
  struct LoopState {
    std::atomic<size_t> Next{0};
    std::atomic<size_t> DoneIters{0};
    size_t Count = 0;
    size_t Chunk = 1;
    const std::function<void(size_t, size_t)> *Body = nullptr;
    /// Pure signalling pair: AllDone wakes the loop's caller once the
    /// atomic DoneIters reaches Count; M only orders notify vs. wait.
    Mutex M;
    CondVar AllDone;
  };

  void workerLoop() EVA_EXCLUDES(PoolMutex);
  /// Claims and runs chunks of \p LS until the iteration space is exhausted.
  void runLoopChunks(LoopState &LS);
  /// Pops and runs one task. Runs the task itself with the pool mutex
  /// dropped, re-acquiring before returning (the caller's lock object
  /// observes no net change).
  void runOneTask() EVA_REQUIRES(PoolMutex);

  std::vector<std::thread> Workers;
  Mutex PoolMutex;
  CondVar TaskAvailable;
  CondVar Idle;
  std::queue<std::function<void()>> Tasks EVA_GUARDED_BY(PoolMutex);
  size_t ActiveTasks EVA_GUARDED_BY(PoolMutex) = 0;
  bool Stopping EVA_GUARDED_BY(PoolMutex) = false;
};

} // namespace eva

#endif // EVA_SUPPORT_THREADPOOL_H
