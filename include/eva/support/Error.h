//===- eva/support/Error.h - Expected<T> error propagation ------*- C++ -*-===//
//
// Part of the EVA-CKKS project (PLDI 2020 "EVA" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal Expected<T>/Status pair for error propagation without
/// exceptions. The compiler returns Expected values so that constraint
/// violations surface as compile-time diagnostics (the paper's "throws an
/// exception" in Algorithm 1) rather than runtime faults in the FHE library.
///
//===----------------------------------------------------------------------===//

#ifndef EVA_SUPPORT_ERROR_H
#define EVA_SUPPORT_ERROR_H

#include "eva/support/Common.h"

#include <optional>
#include <string>
#include <utility>

namespace eva {

/// Success-or-message result for operations with no payload.
///
/// [[nodiscard]] on the type makes every call that returns a Status (or an
/// Expected) a compile error when the result is silently dropped — an
/// unchecked error is a latent crash at the next value() access, and in the
/// service layer a protocol desync. Callers that genuinely do not care must
/// say so in the source, e.g. `(void)S.takeStatus();`.
class [[nodiscard]] Status {
public:
  Status() = default;
  static Status success() { return Status(); }
  static Status error(std::string Message) {
    Status S;
    S.Message = std::move(Message);
    return S;
  }

  bool ok() const { return !Message.has_value(); }
  explicit operator bool() const { return ok(); }
  const std::string &message() const {
    assert(!ok() && "no message on a success Status");
    return *Message;
  }

private:
  std::optional<std::string> Message;
};

/// Either a value of type T or an error message. Accessing the value of an
/// errored Expected is a fatal error; callers must check first.
template <typename T> class [[nodiscard]] Expected {
public:
  /*implicit*/ Expected(T Value) : Value(std::move(Value)) {}
  /*implicit*/ Expected(Status S) {
    assert(!S.ok() && "constructing Expected from a success Status");
    ErrorMessage = S.message();
  }

  static Expected error(std::string Message) {
    Expected E;
    E.ErrorMessage = std::move(Message);
    return E;
  }

  bool ok() const { return Value.has_value(); }
  explicit operator bool() const { return ok(); }

  const std::string &message() const {
    assert(!ok() && "no message on a success Expected");
    return *ErrorMessage;
  }

  T &value() {
    if (!ok())
      fatalError("accessed value of errored Expected: " + *ErrorMessage);
    return *Value;
  }
  const T &value() const {
    if (!ok())
      fatalError("accessed value of errored Expected: " + *ErrorMessage);
    return *Value;
  }
  T &operator*() { return value(); }
  T *operator->() { return &value(); }

  /// Converts an error into a Status (for forwarding up the stack).
  Status takeStatus() const {
    if (ok())
      return Status::success();
    return Status::error(*ErrorMessage);
  }

private:
  Expected() = default;
  std::optional<T> Value;
  std::optional<std::string> ErrorMessage;
};

} // namespace eva

#endif // EVA_SUPPORT_ERROR_H
