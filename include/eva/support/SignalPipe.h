//===- eva/support/SignalPipe.h - Self-pipe for signal handlers -*- C++ -*-===//
//
// Part of the EVA-CKKS project (PLDI 2020 "EVA" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The classic self-pipe trick: a POSIX signal handler may only call
/// async-signal-safe functions, which rules out snapshotting metrics (maps,
/// strings, a mutex) or even setting a condition variable. The handler
/// instead write()s a single token byte into a non-blocking pipe — write()
/// IS async-signal-safe — and the event loop blocks in poll() on the read
/// end, draining tokens and doing the real work (metrics dump, shutdown)
/// in normal thread context where locks are legal.
///
/// This replaces flag-polling loops (`while (!Flag) sleep(100ms)`): the
/// loop wakes the instant a signal lands instead of up to a period later,
/// and burns no CPU while idle.
///
//===----------------------------------------------------------------------===//

#ifndef EVA_SUPPORT_SIGNALPIPE_H
#define EVA_SUPPORT_SIGNALPIPE_H

#include "eva/support/Error.h"

#include <vector>

namespace eva {

/// A one-way pipe carrying single-byte tokens from signal handlers (or any
/// thread) to a draining event loop. Not copyable; the write end is meant
/// to be reachable from a handler via one file-scope pointer set before
/// the handler is installed.
class SignalPipe {
public:
  SignalPipe() = default;
  ~SignalPipe();
  SignalPipe(const SignalPipe &) = delete;
  SignalPipe &operator=(const SignalPipe &) = delete;

  /// Creates the pipe. Both ends are O_NONBLOCK (a full pipe must never
  /// block a signal handler) and O_CLOEXEC.
  Status open();

  /// Async-signal-safe: one write() of one byte, nothing else. A full pipe
  /// (EAGAIN) drops the byte — safe, because 64 KiB of undrained tokens
  /// already guarantee the next poll() wakes immediately.
  void notifyFromHandler(unsigned char Token) noexcept;

  /// Blocks in poll() until at least one token arrives, then drains the
  /// pipe completely, appending every token to \p Tokens in arrival order.
  /// \p TimeoutMs < 0 waits forever. EINTR retries (the interrupting
  /// signal's own token is picked up on the retry). Returns false on
  /// timeout with nothing drained.
  bool wait(int TimeoutMs, std::vector<unsigned char> &Tokens);

  /// The read end, for callers folding the pipe into their own poll set.
  int readFd() const { return Fds[0]; }
  bool isOpen() const { return Fds[0] >= 0; }

private:
  int Fds[2] = {-1, -1};
};

} // namespace eva

#endif // EVA_SUPPORT_SIGNALPIPE_H
