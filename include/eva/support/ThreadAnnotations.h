//===- eva/support/ThreadAnnotations.h - Thread-safety analysis -*- C++ -*-===//
//
// Part of the EVA-CKKS project (PLDI 2020 "EVA" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Clang Thread Safety Analysis plumbing for the whole concurrent layer.
///
/// EVA's thesis is that machine-checked invariants beat expert care: the IR
/// has a verifier (PR 7), and this header gives the C++ lock graph the same
/// treatment. Every mutex in the runtime and the service is an eva::Mutex, a
/// CAPABILITY the compiler tracks; every piece of state a mutex protects is
/// tagged GUARDED_BY; every method that assumes or forbids a held lock says
/// so with EVA_REQUIRES / EVA_EXCLUDES. A Clang build with
/// `-Wthread-safety -Werror` (the clang-static CI job) then *proves* the
/// locking discipline instead of sampling it the way the TSan lane does.
///
/// The wrappers are zero-cost: each is a thin always-inline veneer over the
/// corresponding std type, and off Clang every annotation macro expands to
/// nothing, so GCC builds see plain std::mutex semantics with no extra
/// indirection.
///
/// Conventions (see also the README section "Concurrency discipline and
/// static analysis"):
///
///  * Guarded members carry EVA_GUARDED_BY(M) directly in the class.
///  * Private helpers called with the lock held are EVA_REQUIRES(M).
///  * Public entry points that take the lock themselves are EVA_EXCLUDES(M)
///    so accidental re-entry is a compile error, not a deadlock.
///  * Condition-variable waits are written as explicit `while (!pred)
///    CV.wait(Lock);` loops in a scope that holds the capability — the
///    analysis cannot see through std::condition_variable predicates
///    wrapped in lambdas.
///  * EVA_NO_THREAD_SAFETY_ANALYSIS is an escape hatch of last resort; each
///    use must carry a comment explaining why the invariant holds anyway.
///
//===----------------------------------------------------------------------===//

#ifndef EVA_SUPPORT_THREADANNOTATIONS_H
#define EVA_SUPPORT_THREADANNOTATIONS_H

#include <chrono>
#include <condition_variable>
#include <mutex>

// The attribute spellings follow the Clang Thread Safety Analysis
// documentation; -Wthread-safety understands them under any compiler that
// defines __clang__. Everything else (GCC in the default CI lanes) sees
// empty macros.
#if defined(__clang__)
#define EVA_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define EVA_THREAD_ANNOTATION(x)
#endif

/// Declares a type to be a capability (lockable) the analysis tracks.
#define EVA_CAPABILITY(x) EVA_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type whose lifetime acquires/releases a capability.
#define EVA_SCOPED_CAPABILITY EVA_THREAD_ANNOTATION(scoped_lockable)

/// Member may only be touched while holding the named capability.
#define EVA_GUARDED_BY(x) EVA_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by the named capability.
#define EVA_PT_GUARDED_BY(x) EVA_THREAD_ANNOTATION(pt_guarded_by(x))

/// Documents (and checks) lock-ordering between two capabilities.
#define EVA_ACQUIRED_BEFORE(...)                                               \
  EVA_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define EVA_ACQUIRED_AFTER(...)                                                \
  EVA_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Callee runs with the capability held (caller must hold it).
#define EVA_REQUIRES(...)                                                      \
  EVA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the capability and holds it on return.
#define EVA_ACQUIRE(...)                                                       \
  EVA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases a held capability.
#define EVA_RELEASE(...)                                                       \
  EVA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns the given value.
#define EVA_TRY_ACQUIRE(...)                                                   \
  EVA_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (the function takes it itself);
/// turns self-deadlock into a compile error.
#define EVA_EXCLUDES(...) EVA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the named capability.
#define EVA_RETURN_CAPABILITY(x) EVA_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: skip the analysis for one function. Every use MUST carry a
/// justification comment; the clang-static CI job greps for undocumented
/// ones.
#define EVA_NO_THREAD_SAFETY_ANALYSIS                                          \
  EVA_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace eva {

/// std::mutex as a capability the analysis tracks. Thin veneer: the only
/// addition is the attribute; codegen is identical to std::mutex.
class EVA_CAPABILITY("mutex") Mutex {
public:
  Mutex() = default;
  Mutex(const Mutex &) = delete;
  Mutex &operator=(const Mutex &) = delete;

  void lock() EVA_ACQUIRE() { M.lock(); }
  void unlock() EVA_RELEASE() { M.unlock(); }
  bool try_lock() EVA_TRY_ACQUIRE(true) { return M.try_lock(); }

private:
  friend class LockGuard;
  friend class UniqueLock;
  std::mutex M;
};

/// std::lock_guard over an eva::Mutex, visible to the analysis as a scoped
/// capability: construction acquires, destruction releases.
class EVA_SCOPED_CAPABILITY LockGuard {
public:
  explicit LockGuard(Mutex &Mu) EVA_ACQUIRE(Mu) : Mu(Mu) { Mu.M.lock(); }
  ~LockGuard() EVA_RELEASE() { Mu.M.unlock(); }

  LockGuard(const LockGuard &) = delete;
  LockGuard &operator=(const LockGuard &) = delete;

private:
  Mutex &Mu;
};

/// std::unique_lock over an eva::Mutex — the flavour CondVar::wait needs.
/// lock()/unlock() are annotated so a temporary release inside a held scope
/// stays visible to the analysis.
class EVA_SCOPED_CAPABILITY UniqueLock {
public:
  explicit UniqueLock(Mutex &Mu) EVA_ACQUIRE(Mu) : L(Mu.M) {}
  ~UniqueLock() EVA_RELEASE() {} // member std::unique_lock releases if held

  UniqueLock(const UniqueLock &) = delete;
  UniqueLock &operator=(const UniqueLock &) = delete;

  void lock() EVA_ACQUIRE() { L.lock(); }
  void unlock() EVA_RELEASE() { L.unlock(); }
  bool ownsLock() const { return L.owns_lock(); }

private:
  friend class CondVar;
  std::unique_lock<std::mutex> L;
};

/// std::condition_variable bound to eva::UniqueLock. wait() is opaque to
/// the analysis (the capability is held on entry and on return, which is
/// exactly the condition-variable contract), so explicit
/// `while (!pred) CV.wait(Lock);` loops check cleanly.
class CondVar {
public:
  CondVar() = default;
  CondVar(const CondVar &) = delete;
  CondVar &operator=(const CondVar &) = delete;

  void wait(UniqueLock &Lock) { CV.wait(Lock.L); }

  template <typename Rep, typename Period>
  std::cv_status waitFor(UniqueLock &Lock,
                         const std::chrono::duration<Rep, Period> &Dur) {
    return CV.wait_for(Lock.L, Dur);
  }

  void notify_one() { CV.notify_one(); }
  void notify_all() { CV.notify_all(); }

private:
  std::condition_variable CV;
};

} // namespace eva

#endif // EVA_SUPPORT_THREADANNOTATIONS_H
