//===- eva/support/Telemetry.h - Metrics registry and tracing ---*- C++ -*-===//
//
// Part of the EVA-CKKS project (PLDI 2020 "EVA" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Always-on operational telemetry for the encrypted-compute service: the
/// server computes on opaque ciphertexts (paper Section 2), so this layer
/// is the only window an operator has into a running fleet.
///
/// Three instrument kinds, all lock-free on the hot path (relaxed atomics;
/// instrument handles are stable for the registry's lifetime):
///
///  * Counter   — monotone uint64 (requests, errors, evaluator-op totals).
///  * Gauge     — settable int64 (queue depth, open sessions, pinned key
///                bytes).
///  * Histogram — fixed-boundary latency/size distribution with
///                count/sum and post-hoc quantile extraction (p50/p95/p99)
///                from a snapshot; one relaxed increment + one CAS-add per
///                observation.
///
/// Reads never block writers: snapshot() copies every instrument's current
/// values into a plain MetricsSnapshot, which serializes over the wire
/// (MessageType::GetMetrics), renders Prometheus-style text exposition, and
/// answers quantile queries. Metric names follow the Prometheus convention
/// including labels baked into the registered name:
/// `eva_requests_total{program="svc_bench"}`.
///
/// TraceContext is the per-request companion: a server-assigned request id
/// plus span timings (decode, queue wait, execute, encode) carried through
/// dispatch -> scheduler -> session, landing both in the histograms above
/// and (at -v) in one structured log line per request.
///
//===----------------------------------------------------------------------===//

#ifndef EVA_SUPPORT_TELEMETRY_H
#define EVA_SUPPORT_TELEMETRY_H

#include "eva/support/ThreadAnnotations.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace eva {

//===----------------------------------------------------------------------===//
// Instruments
//===----------------------------------------------------------------------===//

class Counter {
public:
  void add(uint64_t N = 1) { V.fetch_add(N, std::memory_order_relaxed); }
  uint64_t value() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V{0};
};

class Gauge {
public:
  void set(int64_t N) { V.store(N, std::memory_order_relaxed); }
  void add(int64_t N) { V.fetch_add(N, std::memory_order_relaxed); }
  void sub(int64_t N) { V.fetch_sub(N, std::memory_order_relaxed); }
  int64_t value() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<int64_t> V{0};
};

/// Fixed-boundary histogram: observations land in the first bucket whose
/// upper bound is >= the value (the last bucket is implicit +Inf). Bounds
/// are fixed at registration so concurrent observation needs no
/// coordination beyond per-bucket relaxed increments.
class Histogram {
public:
  explicit Histogram(std::vector<double> UpperBounds);

  void observe(double Value);

  const std::vector<double> &bounds() const { return UpperBounds; }
  uint64_t count() const { return Count.load(std::memory_order_relaxed); }

  /// Copies buckets/count/sum. The copy is a consistent-enough view for
  /// monitoring: each field is individually atomic, and Count is read last
  /// so `sum(buckets) >= count` never underreports a bucket.
  void read(std::vector<uint64_t> &BucketsOut, uint64_t &CountOut,
            double &SumOut) const;

private:
  std::vector<double> UpperBounds;               ///< ascending, finite
  std::vector<std::atomic<uint64_t>> Buckets;    ///< UpperBounds.size() + 1
  std::atomic<uint64_t> Count{0};
  std::atomic<double> Sum{0}; // CAS-add (atomic<double>::fetch_add is C++20
                              // but spotty in libstdc++ 12)
};

//===----------------------------------------------------------------------===//
// Snapshots
//===----------------------------------------------------------------------===//

struct CounterSnapshot {
  std::string Name;
  uint64_t Value = 0;
};

struct GaugeSnapshot {
  std::string Name;
  int64_t Value = 0;
};

struct HistogramSnapshot {
  std::string Name;
  std::vector<double> UpperBounds; ///< ascending finite bounds
  std::vector<uint64_t> Buckets;   ///< UpperBounds.size() + 1 (+Inf last)
  uint64_t Count = 0;
  double Sum = 0;

  /// Prometheus-style quantile estimate (\p Q in [0,1]): find the bucket
  /// holding the Q*Count-th observation and interpolate linearly inside it.
  /// Values in the +Inf bucket clamp to the largest finite bound. Returns 0
  /// when empty.
  double quantile(double Q) const;
  double mean() const { return Count == 0 ? 0 : Sum / double(Count); }
  /// Width of the bucket that answers quantile(\p Q) — the resolution of
  /// that estimate (tests assert |client-measured - quantile| <= width).
  double bucketWidthAt(double Q) const;
};

/// One coherent read of every registered instrument.
struct MetricsSnapshot {
  std::vector<CounterSnapshot> Counters;   ///< name-sorted
  std::vector<GaugeSnapshot> Gauges;       ///< name-sorted
  std::vector<HistogramSnapshot> Histograms; ///< name-sorted

  const CounterSnapshot *counter(std::string_view Name) const;
  const GaugeSnapshot *gauge(std::string_view Name) const;
  const HistogramSnapshot *histogram(std::string_view Name) const;
  uint64_t counterValue(std::string_view Name) const {
    const CounterSnapshot *C = counter(Name);
    return C ? C->Value : 0;
  }

  /// Prometheus text exposition (`# TYPE` lines, `_bucket{le="..."}`
  /// cumulative buckets, `_sum`/`_count`). Labels baked into instrument
  /// names are merged with the `le` label on bucket lines.
  std::string renderText() const;
};

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

/// Named instruments with stable addresses. Registration takes a mutex;
/// the returned references are valid for the registry's lifetime and their
/// updates are lock-free. Re-registering a name returns the existing
/// instrument (histogram bounds from the first registration win).
class MetricsRegistry {
public:
  Counter &counter(std::string_view Name) EVA_EXCLUDES(M);
  Gauge &gauge(std::string_view Name) EVA_EXCLUDES(M);
  Histogram &histogram(std::string_view Name,
                       const std::vector<double> &UpperBounds)
      EVA_EXCLUDES(M);
  /// Latency histogram with the default exponential boundaries.
  Histogram &latencyHistogram(std::string_view Name) {
    return histogram(Name, defaultLatencyBounds());
  }

  MetricsSnapshot snapshot() const EVA_EXCLUDES(M);

  /// 100us .. 30s, roughly x2.5 per step: wide enough for both a sub-ms
  /// queue wait and a multi-second deep-network execute.
  static const std::vector<double> &defaultLatencyBounds();

private:
  /// Leaf lock: registration and snapshot only; never held while calling
  /// out of this class (the lock-order table in tools/evalint-cpp treats it
  /// as always-acquired-last).
  mutable Mutex M;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> Counters
      EVA_GUARDED_BY(M);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> Gauges
      EVA_GUARDED_BY(M);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> Histograms
      EVA_GUARDED_BY(M);
};

/// `base{key="value"}` with value escaping — the convention for per-program
/// and per-cause metric families.
std::string labeledMetric(std::string_view Base, std::string_view Key,
                          std::string_view Value);

//===----------------------------------------------------------------------===//
// Request tracing
//===----------------------------------------------------------------------===//

/// Follows one request through the service: dispatch assigns the id and
/// times decode/encode, the scheduler fills the queue-wait span, the
/// session fills the execute span. Lives on the dispatching thread's stack
/// (dispatch blocks on the request future, and the scheduler worker writes
/// its spans before resolving the promise, so the accesses are ordered).
struct TraceContext {
  uint64_t RequestId = 0;
  uint64_t SessionId = 0;
  std::string Program;
  double DecodeSeconds = 0;  ///< wire decode + ciphertext deserialization
  double QueueSeconds = 0;   ///< scheduler queue wait
  double ExecuteSeconds = 0; ///< session execute (validate + run)
  double EncodeSeconds = 0;  ///< response serialization
  double TotalSeconds = 0;   ///< dispatch entry to response ready
};

} // namespace eva

#endif // EVA_SUPPORT_TELEMETRY_H
