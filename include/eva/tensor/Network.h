//===- eva/tensor/Network.h - DNN definitions and model zoo -----*- C++ -*-===//
//
// Part of the EVA-CKKS project (PLDI 2020 "EVA" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// FHE-compatible network definitions (average pooling and polynomial
/// activations in place of max-pool/ReLU, as the paper's Section 8.2
/// networks) plus the model zoo of Table 3: LeNet-5 small/medium/large,
/// Industrial, and SqueezeNet-CIFAR. Architectures are scaled so each
/// intermediate tensor fits one ciphertext (our layouts are single-cipher
/// CHW; the paper's CHET layout selection could split tensors), keeping the
/// relative ordering of the five networks.
///
/// Every definition can (a) run a plaintext reference forward pass and
/// (b) emit an EVA program via the homomorphic kernel library, with weights
/// drawn from a seeded generator in place of the unavailable trained models
/// (the paper itself evaluates Industrial with random weights).
///
//===----------------------------------------------------------------------===//

#ifndef EVA_TENSOR_NETWORK_H
#define EVA_TENSOR_NETWORK_H

#include "eva/tensor/Kernels.h"

#include <memory>
#include <string>
#include <vector>

namespace eva {

struct Layer {
  enum class Kind { Conv, Square, AvgPool, Fc, Fire } K;

  // Conv: W (Co,Ci,Kh,Kw), Bias (Co), Stride, SamePad.
  // Fc: W (Out,In), Bias (Out).
  // Fire: SqueezeW + Expand1W (1x1) + Expand3W (3x3), squares inside.
  Tensor W, Bias;
  Tensor Expand1W, Expand1B;
  Tensor Expand3W, Expand3B;
  size_t Stride = 1;
  size_t PoolK = 2;
  bool SamePad = true;
};

class NetworkDefinition {
public:
  NetworkDefinition() = default;
  NetworkDefinition(std::string Name, size_t InC, size_t InH, size_t InW)
      : Name(Name), InC(InC), InH(InH), InW(InW) {}

  const std::string &name() const { return Name; }
  size_t inputChannels() const { return InC; }
  size_t inputHeight() const { return InH; }
  size_t inputWidth() const { return InW; }
  const std::vector<Layer> &layers() const { return Layers; }

  void addConv(Tensor W, Tensor Bias, size_t Stride, bool SamePad);
  void addSquare();
  void addAvgPool(size_t K, size_t Stride);
  void addFc(Tensor W, Tensor Bias);
  void addFire(Tensor Squeeze, Tensor SB, Tensor E1, Tensor E1B, Tensor E3,
               Tensor E3B);

  /// Counts of Table 3's columns.
  size_t convLayerCount() const;
  size_t fcLayerCount() const;
  size_t activationCount() const;
  /// Multiply-accumulate FP operation count of one forward pass.
  size_t fpOperationCount() const;
  size_t numClasses() const;

  /// Plaintext reference inference (independent of the EVA path).
  Tensor runPlain(const Tensor &Image) const;

  /// Profiling-style weight calibration (the paper's scale selection uses
  /// CHET's profiling similarly, Section 8.2): scales every weight layer so
  /// its activations on \p Probe peak at \p Target, keeping the square
  /// activations stable under random weights.
  void calibrate(const Tensor &Probe, double Target = 0.8);

  /// Smallest power-of-two vector size whose slots hold every layer.
  size_t requiredVecSize() const;

  /// Emits the EVA program: one Cipher input "image", one output "scores".
  std::unique_ptr<Program> buildProgram(const TensorScales &Scales) const;

private:
  std::string Name;
  size_t InC = 0, InH = 0, InW = 0;
  std::vector<Layer> Layers;
};

/// The Table 3 model zoo (weights from \p Seed).
NetworkDefinition makeLeNet5Small(uint64_t Seed);
NetworkDefinition makeLeNet5Medium(uint64_t Seed);
NetworkDefinition makeLeNet5Large(uint64_t Seed);
NetworkDefinition makeIndustrial(uint64_t Seed);
NetworkDefinition makeSqueezeNetCifar(uint64_t Seed);

/// All five, in Table 3 order.
std::vector<NetworkDefinition> makeAllNetworks(uint64_t Seed);

} // namespace eva

#endif // EVA_TENSOR_NETWORK_H
