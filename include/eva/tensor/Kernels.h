//===- eva/tensor/Kernels.h - Homomorphic tensor kernels --------*- C++ -*-===//
//
// Part of the EVA-CKKS project (PLDI 2020 "EVA" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The library of vectorized tensor kernels the DNN frontend lowers to
/// (Section 7.2): each kernel emits plain EVA instructions (rotations,
/// plaintext-mask multiplies, additions) over a single ciphertext holding a
/// CHW-flattened tensor — the CHW data layout the paper's evaluation uses
/// for both CHET and EVA. Kernels tag the nodes they emit with a kernel id,
/// which the CHET-style bulk-synchronous executor uses as barrier
/// boundaries.
///
/// Layout: pixel (c, y, x) of a tensor with logical dims (C, H, W) lives at
/// slot c*GridH*GridW + y*StrideY*GridW + x*StrideX. Strided convolutions
/// and pools leave values in place on the original grid and dilate the
/// strides (CHET's strided layouts); masks carry the weights and zero out
/// the garbage slots in between.
///
//===----------------------------------------------------------------------===//

#ifndef EVA_TENSOR_KERNELS_H
#define EVA_TENSOR_KERNELS_H

#include "eva/frontend/Expr.h"
#include "eva/tensor/Tensor.h"

#include <map>

namespace eva {

struct CipherLayout {
  size_t C = 0, H = 0, W = 0;      ///< logical tensor dims
  size_t GridH = 0, GridW = 0;     ///< physical grid per channel
  size_t StrideY = 1, StrideX = 1; ///< grid steps between logical pixels

  size_t slotOf(size_t Ch, size_t Y, size_t X) const {
    return Ch * GridH * GridW + Y * StrideY * GridW + X * StrideX;
  }
  size_t channelStride() const { return GridH * GridW; }
  size_t slotExtent() const { return C * GridH * GridW; }
  size_t logicalSize() const { return C * H * W; }

  static CipherLayout forImage(size_t C, size_t H, size_t W) {
    CipherLayout L;
    L.C = C;
    L.H = L.GridH = H;
    L.W = L.GridW = W;
    return L;
  }
};

/// Scale configuration shared by all kernels (the Table 4 "input scales";
/// the Vector default follows the LeNet-5-large row — with fan-in-scaled
/// random weights the 2^-15 mask quantization of the smaller setting
/// dominates the score gaps, see EXPERIMENTS.md).
struct TensorScales {
  double Cipher = 25; ///< encrypted image
  double Vector = 20; ///< weight/mask vectors
  double Scalar = 10; ///< scalar constants
  double Output = 30; ///< desired output scale
};

/// A tensor value under construction: expression plus layout.
struct CipherTensor {
  Expr Value;
  CipherLayout Layout;
};

/// Emits one convolution kernel. Weights: (Co, Ci, Kh, Kw); optional Bias:
/// (Co). Rotations are cached by offset, so the rotation count is
/// O((Ci + Co) * Kh * Kw) rather than O(Ci * Co * Kh * Kw).
CipherTensor conv2d(ProgramBuilder &B, const CipherTensor &In,
                    const Tensor &Weights, const Tensor &Bias, size_t Stride,
                    bool SamePad, const TensorScales &Scales);

/// KxK average pooling with stride (valid windows only).
CipherTensor avgPool2d(ProgramBuilder &B, const CipherTensor &In, size_t K,
                       size_t Stride, const TensorScales &Scales);

/// Elementwise x^2 (the FHE-compatible activation the paper's networks
/// use in place of ReLU).
CipherTensor squareActivation(ProgramBuilder &B, const CipherTensor &In);

/// Elementwise a*x^2 + b*x polynomial activation.
CipherTensor polyActivation(ProgramBuilder &B, const CipherTensor &In,
                            double A2, double A1, const TensorScales &Scales);

/// Rotation-tree reduction: returns an expression whose every slot k holds
/// the cyclic sum of \p Span consecutive slots of \p V starting at k
/// (Span is rounded up to a power of two; Span >= vec_size sums the whole
/// vector into every slot). Emits log2(Span) rotations, all by powers of
/// two — the log-depth tree the SUM lowering and the dense-layer kernels
/// share, using only the program-wide power-of-two Galois keys.
Expr rotationTreeSum(ProgramBuilder &B, Expr V, size_t Span);

/// Baby-step–giant-step diagonal matvec y = Wx + b over a *dense* layout
/// (logical element j at slot j): the matrix is consumed as cyclic
/// diagonals, the O(sqrt) baby rotations all rotate the input ciphertext
/// itself — one hoist batch sharing a single key-switch decomposition —
/// and only the O(sqrt) giant steps pay their own decompositions. Compare
/// the per-output mask-and-reduce path: O(Out * log vec_size) rotations,
/// each with its own decomposition. Weights: (Out, In); In must equal the
/// layout's logical size. Output layout is dense.
CipherTensor matVecBsgs(ProgramBuilder &B, const CipherTensor &In,
                        const Tensor &Weights, const Tensor &Bias,
                        const TensorScales &Scales);

/// Dense layer y = Wx + b; Weights: (Out, In) over the flattened logical
/// CHW input. Output layout is dense: element j at slot j. Dense inputs
/// dispatch to the BSGS diagonal kernel (matVecBsgs); strided layouts fall
/// back to the per-output mask + rotation-tree reduction.
CipherTensor fullyConnected(ProgramBuilder &B, const CipherTensor &In,
                            const Tensor &Weights, const Tensor &Bias,
                            const TensorScales &Scales);

/// Concatenates B2 after B1 along channels (same grid and strides).
CipherTensor concatChannels(ProgramBuilder &B, const CipherTensor &A,
                            const CipherTensor &B2,
                            const TensorScales &Scales);

} // namespace eva

#endif // EVA_TENSOR_KERNELS_H
