//===- eva/tensor/Tensor.h - Plain dense tensors ----------------*- C++ -*-===//
//
// Part of the EVA-CKKS project (PLDI 2020 "EVA" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small dense tensor in CHW order, used for model weights and for the
/// plaintext reference implementations that the homomorphic kernels are
/// tested against.
///
//===----------------------------------------------------------------------===//

#ifndef EVA_TENSOR_TENSOR_H
#define EVA_TENSOR_TENSOR_H

#include "eva/support/Random.h"

#include <cassert>
#include <cstddef>
#include <vector>

namespace eva {

class Tensor {
public:
  Tensor() = default;
  explicit Tensor(std::vector<size_t> Dims)
      : Dims(std::move(Dims)), Data(elementCount(this->Dims), 0.0) {}

  static size_t elementCount(const std::vector<size_t> &Dims) {
    size_t N = 1;
    for (size_t D : Dims)
      N *= D;
    return N;
  }

  /// Uniform random entries in [-Limit, Limit] (the paper evaluates the
  /// proprietary Industrial model with random weights in [-1, 1]).
  static Tensor random(std::vector<size_t> Dims, RandomSource &Rng,
                       double Limit = 1.0) {
    Tensor T(std::move(Dims));
    for (double &V : T.Data)
      V = Rng.uniformReal(-Limit, Limit);
    return T;
  }

  const std::vector<size_t> &dims() const { return Dims; }
  size_t size() const { return Data.size(); }
  const std::vector<double> &data() const { return Data; }
  std::vector<double> &data() { return Data; }

  double &at(size_t I) { return Data[I]; }
  double at(size_t I) const { return Data[I]; }

  double &at2(size_t I, size_t J) {
    assert(Dims.size() == 2);
    return Data[I * Dims[1] + J];
  }
  double at2(size_t I, size_t J) const {
    assert(Dims.size() == 2);
    return Data[I * Dims[1] + J];
  }

  double &at3(size_t C, size_t Y, size_t X) {
    assert(Dims.size() == 3);
    return Data[(C * Dims[1] + Y) * Dims[2] + X];
  }
  double at3(size_t C, size_t Y, size_t X) const {
    assert(Dims.size() == 3);
    return Data[(C * Dims[1] + Y) * Dims[2] + X];
  }

  double &at4(size_t O, size_t I, size_t Y, size_t X) {
    assert(Dims.size() == 4);
    return Data[((O * Dims[1] + I) * Dims[2] + Y) * Dims[3] + X];
  }
  double at4(size_t O, size_t I, size_t Y, size_t X) const {
    assert(Dims.size() == 4);
    return Data[((O * Dims[1] + I) * Dims[2] + Y) * Dims[3] + X];
  }

private:
  std::vector<size_t> Dims;
  std::vector<double> Data;
};

/// Plaintext reference kernels (independent implementations used to
/// validate the homomorphic kernels).
namespace plain {

/// Valid or zero-padded-same convolution with stride. In: (Ci, H, W),
/// Weights: (Co, Ci, Kh, Kw), Bias: (Co) or empty.
Tensor conv2d(const Tensor &In, const Tensor &Weights, const Tensor &Bias,
              size_t Stride, bool SamePad);

/// Average pooling with a KxK window and the given stride (same padding
/// semantics: windows are clipped at borders, divisor stays K*K).
Tensor avgPool2d(const Tensor &In, size_t K, size_t Stride);

/// y = W x + b with W: (Out, In), x flattened CHW.
Tensor fullyConnected(const Tensor &In, const Tensor &Weights,
                      const Tensor &Bias);

/// Elementwise x^2.
Tensor square(const Tensor &In);

} // namespace plain

} // namespace eva

#endif // EVA_TENSOR_TENSOR_H
