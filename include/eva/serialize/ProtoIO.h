//===- eva/serialize/ProtoIO.h - EVA program (de)serialization --*- C++ -*-===//
//
// Part of the EVA-CKKS project (PLDI 2020 "EVA" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes EVA programs in the Protocol Buffers schema of Figure 1:
///
/// \code
///   message Object      { uint64 id = 1; }
///   message Instruction { Object output = 1; OpCode op_code = 2;
///                         repeated Object args = 3;
///                         /* extensions: */ sint64 rotation = 4;
///                         int32 rescale_bits = 5; double attr_scale = 6; }
///   message Vector      { repeated double elements = 1; } // packed
///   message Input       { Object obj = 1; ObjectType type = 2;
///                         double scale = 3; string name = 15; }
///   message Constant    { Object obj = 1; ObjectType type = 2;
///                         double scale = 3; Vector vec = 4; }
///   message Output      { Object obj = 1; double scale = 2;
///                         string name = 15; }
///   message Program     { uint64 vec_size = 1;
///                         repeated Constant constants = 2;
///                         repeated Input inputs = 3;
///                         repeated Output outputs = 4;
///                         repeated Instruction insts = 5;
///                         string name = 6; }
/// \endcode
///
/// Fields 4-6/15 are extensions of the paper's schema carrying attributes
/// the paper models as instruction arguments (rotation counts, rescale
/// divisors) and the I/O names used by the runtime API; readers tolerate
/// their absence and ignore unknown fields, so the format stays wire-
/// compatible with the paper's.
///
//===----------------------------------------------------------------------===//

#ifndef EVA_SERIALIZE_PROTOIO_H
#define EVA_SERIALIZE_PROTOIO_H

#include "eva/ir/Program.h"
#include "eva/support/Error.h"

#include <memory>
#include <string>
#include <string_view>

namespace eva {

/// Serializes \p P to proto3 wire format. Instructions are emitted in
/// forward topological order so deserialization is single-pass.
std::string serializeProgram(const Program &P);

/// Parses a program from wire format; fails with a diagnostic on malformed
/// or semantically invalid input (dangling ids, bad opcodes, cycles).
Expected<std::unique_ptr<Program>> deserializeProgram(std::string_view Data);

/// Convenience file I/O.
Status saveProgram(const Program &P, const std::string &Path);
Expected<std::unique_ptr<Program>> loadProgram(const std::string &Path);

} // namespace eva

#endif // EVA_SERIALIZE_PROTOIO_H
