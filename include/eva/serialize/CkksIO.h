//===- eva/serialize/CkksIO.h - Runtime object serialization ----*- C++ -*-===//
//
// Part of the EVA-CKKS project (PLDI 2020 "EVA" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Proto3 wire-format (de)serialization for the CKKS runtime objects that
/// cross the client/server boundary of an encrypted-compute deployment
/// (paper Section 2): ciphertexts, plaintexts, and the key set. Extends the
/// hand-rolled wire layer of serialize/Wire.h with the following schema:
///
/// \code
///   message RnsPoly    { uint64 degree = 1; uint64 prime_count = 2;
///                        repeated bytes comps = 3; } // raw LE u64 * degree
///   message Plaintext  { RnsPoly poly = 1; double scale = 2; }
///   message Ciphertext { repeated RnsPoly polys = 1; double scale = 2;
///                        uint64 c1_seed = 3; } // seed-compressed form
///   message PublicKey  { RnsPoly p0 = 1; RnsPoly p1 = 2;
///                        uint64 p1_seed = 3; }
///   message KSwitchPair{ RnsPoly k0 = 1; RnsPoly k1 = 2;
///                        uint64 c1_seed = 3; }
///   message KSwitchKey { repeated KSwitchPair pairs = 1; }
///   message RelinKeys  { KSwitchKey key = 1; }
///   message GaloisEntry{ uint64 galois_elt = 1; KSwitchKey key = 2; }
///   message GaloisKeys { repeated GaloisEntry entries = 1; }
///   message SecretKey  { RnsPoly s = 1; }
/// \endcode
///
/// Seed compression: a nonzero `c1_seed` / `p1_seed` replaces the uniform
/// polynomial of a freshly sampled key or symmetric ciphertext — the loader
/// re-expands it with expandUniformNtt, roughly halving key upload size.
/// When a seed is present the corresponding polynomial field is omitted.
///
/// Loaders are defensive like the program reader in ProtoIO.h: every
/// polynomial is validated against the supplied context (degree, component
/// counts, residues reduced modulo their primes), so malformed or hostile
/// input yields a diagnostic, never undefined behaviour — a requirement for
/// a server deserializing ciphertexts from untrusted clients.
///
//===----------------------------------------------------------------------===//

#ifndef EVA_SERIALIZE_CKKSIO_H
#define EVA_SERIALIZE_CKKSIO_H

#include "eva/ckks/Ciphertext.h"
#include "eva/ckks/Context.h"
#include "eva/ckks/Keys.h"
#include "eva/ckks/Plaintext.h"
#include "eva/support/Error.h"

#include <string>
#include <string_view>

namespace eva {

std::string serializeRnsPoly(const RnsPoly &P);
/// \p MaxPrimes bounds the accepted component count (data-chain objects pass
/// dataPrimeCount(), key material totalPrimeCount()).
Expected<RnsPoly> deserializeRnsPoly(const CkksContext &Ctx,
                                     std::string_view Data, size_t MaxPrimes);

std::string serializePlaintext(const Plaintext &Pt);
Expected<Plaintext> deserializePlaintext(const CkksContext &Ctx,
                                         std::string_view Data);

/// \p C1Seed, when nonzero, must be the expansion seed of Ct.Polys[1] (a
/// fresh symmetric ciphertext): the second polynomial is then replaced by
/// the 8-byte seed on the wire.
std::string serializeCiphertext(const Ciphertext &Ct, uint64_t C1Seed = 0);
Expected<Ciphertext> deserializeCiphertext(const CkksContext &Ctx,
                                           std::string_view Data);

/// Public and evaluation keys apply seed compression automatically whenever
/// the in-memory key carries its expansion seeds (keys made by
/// KeyGenerator always do; keys loaded from the wire keep theirs).
std::string serializePublicKey(const PublicKey &Pk);
Expected<PublicKey> deserializePublicKey(const CkksContext &Ctx,
                                         std::string_view Data);

std::string serializeRelinKeys(const RelinKeys &Rk);
Expected<RelinKeys> deserializeRelinKeys(const CkksContext &Ctx,
                                         std::string_view Data);

std::string serializeGaloisKeys(const GaloisKeys &Gk);
Expected<GaloisKeys> deserializeGaloisKeys(const CkksContext &Ctx,
                                           std::string_view Data);

/// Secret keys serialize for client-side persistence only; no service wire
/// message embeds one (the transport has no frame that carries it).
std::string serializeSecretKey(const SecretKey &Sk);
Expected<SecretKey> deserializeSecretKey(const CkksContext &Ctx,
                                         std::string_view Data);

} // namespace eva

#endif // EVA_SERIALIZE_CKKSIO_H
