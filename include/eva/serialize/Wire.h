//===- eva/serialize/Wire.h - Protocol Buffers wire format ------*- C++ -*-===//
//
// Part of the EVA-CKKS project (PLDI 2020 "EVA" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal hand-rolled implementation of the proto3 wire format (varints,
/// fixed64, and length-delimited fields) — enough to serialize the EVA
/// program schema of Figure 1 in the paper without an external Protocol
/// Buffers dependency. Readers are defensive: malformed input yields an
/// error, never undefined behaviour.
///
//===----------------------------------------------------------------------===//

#ifndef EVA_SERIALIZE_WIRE_H
#define EVA_SERIALIZE_WIRE_H

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace eva {

enum class WireType : uint8_t {
  Varint = 0,
  Fixed64 = 1,
  LengthDelimited = 2,
};

class WireWriter {
public:
  void varint(uint64_t V) {
    while (V >= 0x80) {
      Buffer.push_back(static_cast<char>((V & 0x7F) | 0x80));
      V >>= 7;
    }
    Buffer.push_back(static_cast<char>(V));
  }

  void tag(uint32_t Field, WireType Type) {
    varint((static_cast<uint64_t>(Field) << 3) |
           static_cast<uint64_t>(Type));
  }

  void varintField(uint32_t Field, uint64_t V) {
    tag(Field, WireType::Varint);
    varint(V);
  }

  void doubleField(uint32_t Field, double V) {
    tag(Field, WireType::Fixed64);
    uint64_t Bits;
    std::memcpy(&Bits, &V, 8);
    for (int I = 0; I < 8; ++I)
      Buffer.push_back(static_cast<char>((Bits >> (8 * I)) & 0xFF));
  }

  void bytesField(uint32_t Field, std::string_view Bytes) {
    tag(Field, WireType::LengthDelimited);
    varint(Bytes.size());
    Buffer.append(Bytes);
  }

  const std::string &str() const { return Buffer; }
  std::string take() { return std::move(Buffer); }

private:
  std::string Buffer;
};

class WireReader {
public:
  explicit WireReader(std::string_view Data) : Data(Data) {}

  bool atEnd() const { return Pos >= Data.size() || Failed; }
  bool failed() const { return Failed; }

  /// Reads the next field header; returns false at end or on error.
  bool nextField(uint32_t &Field, WireType &Type) {
    if (atEnd())
      return false;
    uint64_t Key;
    if (!readVarint(Key))
      return false;
    Field = static_cast<uint32_t>(Key >> 3);
    uint8_t T = Key & 7;
    if (T != 0 && T != 1 && T != 2) {
      Failed = true;
      return false;
    }
    Type = static_cast<WireType>(T);
    return true;
  }

  bool readVarint(uint64_t &V) {
    V = 0;
    for (unsigned Shift = 0; Shift < 64; Shift += 7) {
      if (Pos >= Data.size()) {
        Failed = true;
        return false;
      }
      uint8_t B = static_cast<uint8_t>(Data[Pos++]);
      // The 10th byte (Shift == 63) may only contribute its lowest payload
      // bit; anything above would shift past bit 63 and be silently lost,
      // so a value with those bits set does not fit in 64 bits.
      if (Shift == 63 && (B & 0x7E) != 0) {
        Failed = true;
        return false;
      }
      V |= static_cast<uint64_t>(B & 0x7F) << Shift;
      if ((B & 0x80) == 0)
        return true;
    }
    // Continuation bit still set after 10 bytes: the varint is overlong.
    Failed = true;
    return false;
  }

  bool readDouble(double &V) {
    if (Pos + 8 > Data.size()) {
      Failed = true;
      return false;
    }
    uint64_t Bits = 0;
    for (int I = 0; I < 8; ++I)
      Bits |= static_cast<uint64_t>(static_cast<uint8_t>(Data[Pos + I]))
              << (8 * I);
    Pos += 8;
    std::memcpy(&V, &Bits, 8);
    return true;
  }

  bool readBytes(std::string_view &Out) {
    uint64_t Len;
    if (!readVarint(Len))
      return false;
    if (Len > Data.size() - Pos) {
      Failed = true;
      return false;
    }
    Out = Data.substr(Pos, Len);
    Pos += Len;
    return true;
  }

  /// Skips a field of the given wire type (unknown-field tolerance).
  bool skip(WireType Type) {
    switch (Type) {
    case WireType::Varint: {
      uint64_t V;
      return readVarint(V);
    }
    case WireType::Fixed64: {
      double D;
      return readDouble(D);
    }
    case WireType::LengthDelimited: {
      std::string_view B;
      return readBytes(B);
    }
    }
    Failed = true;
    return false;
  }

private:
  std::string_view Data;
  size_t Pos = 0;
  bool Failed = false;
};

} // namespace eva

#endif // EVA_SERIALIZE_WIRE_H
